package noc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassFlits(t *testing.T) {
	if got := ClassRequest.Flits(); got != 1 {
		t.Errorf("request flits = %d, want 1", got)
	}
	if got := ClassReply.Flits(); got != 4 {
		t.Errorf("reply flits = %d, want 4", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassRequest.String() != "request" || ClassReply.String() != "reply" {
		t.Errorf("class strings = %q, %q", ClassRequest, ClassReply)
	}
}

func TestVCDepthHoldsLargestPacket(t *testing.T) {
	// Virtual cut-through invariant: a VC must absorb a whole packet.
	if FlitsPerVC < ReplyFlits {
		t.Fatalf("FlitsPerVC %d < largest packet %d", FlitsPerVC, ReplyFlits)
	}
}

func TestPacketHopAdvance(t *testing.T) {
	p := &Packet{ID: 1, Class: ClassReply, Size: 4}
	if p.Hop() != 0 {
		t.Fatalf("fresh packet at hop %d", p.Hop())
	}
	p.AdvanceHop()
	p.AdvanceHop()
	if p.Hop() != 2 || p.HopsDone != 2 {
		t.Fatalf("hop = %d hopsDone = %d, want 2, 2", p.Hop(), p.HopsDone)
	}
}

func TestPacketResetForRetransmit(t *testing.T) {
	p := &Packet{ID: 9, Created: 100, Injected: 120}
	p.AdvanceHop()
	p.AdvanceHop()
	p.ResetForRetransmit()
	if p.Hop() != 0 {
		t.Errorf("hop after reset = %d", p.Hop())
	}
	if p.HopsDone != 0 {
		t.Errorf("hopsDone after reset = %d", p.HopsDone)
	}
	if p.Retransmits != 1 {
		t.Errorf("retransmits = %d, want 1", p.Retransmits)
	}
	if p.Created != 100 {
		t.Errorf("creation time changed: %d", p.Created)
	}
}

func TestPacketRetransmitCounterAccumulates(t *testing.T) {
	p := &Packet{}
	for i := 0; i < 5; i++ {
		p.AdvanceHop()
		p.ResetForRetransmit()
	}
	if p.Retransmits != 5 {
		t.Errorf("retransmits = %d, want 5", p.Retransmits)
	}
}

func TestWorstPriorityOrdering(t *testing.T) {
	check := func(raw uint64) bool {
		p := Priority(raw)
		return p <= WorstPriority
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 4, Flow: 2, Src: 1, Dst: 6, Class: ClassRequest}
	s := p.String()
	for _, want := range []string{"pkt 4", "flow 2", "1->6", "request"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
