package core

import (
	"testing"

	"tanoq/internal/chip"
	"tanoq/internal/qos"
	"tanoq/internal/stats"
	"tanoq/internal/topology"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Chip.SharedCols = nil
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("system without shared columns accepted")
	}
	cfg = DefaultConfig()
	cfg.RegionKind = topology.Kind(99)
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown region topology accepted")
	}
	cfg = DefaultConfig()
	cfg.FrameCycles = 0
	s, err := NewSystem(cfg)
	if err != nil || s == nil {
		t.Fatal("zero frame should default, not fail")
	}
}

func TestFigure1bScenario(t *testing.T) {
	// The paper's Figure 1(b): three VMs in convex domains around a
	// shared column, with all invariants holding.
	s := newSys(t)
	if _, err := s.AllocateVM(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocateVM(2, 12); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocateVM(3, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.ScheduleThreads(1, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestBuildSharedRegionAndGuarantees(t *testing.T) {
	// Two VMs with equal SLAs but very different offered loads: under
	// PVC the aggressor cannot push the victim below its share.
	s := newSys(t)
	if _, err := s.AllocateVM(1, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AllocateVM(2, 8); err != nil {
		t.Fatal(err)
	}
	loads := []MemoryLoad{
		{VM: 1, Share: 0.5, Offered: 0.4}, // victim, under its share
		{VM: 2, Share: 0.5, Offered: 1.6}, // aggressor, 3x oversubscribed
	}
	n, err := s.BuildSharedRegion(qos.PVC, loads)
	if err != nil {
		t.Fatal(err)
	}
	n.WarmupAndMeasure(5000, 30000)
	tp, err := s.VMThroughput(n, loads)
	if err != nil {
		t.Fatal(err)
	}
	if tp[1] == 0 || tp[2] == 0 {
		t.Fatalf("throughput missing: %v", tp)
	}
	// The victim offered 0.4 flits/cycle over 30000 cycles = 12000
	// flits; with QoS it should receive nearly all of it.
	victimRate := float64(tp[1]) / 30000
	if victimRate < 0.8*0.4 {
		t.Errorf("victim accepted %.3f flits/cycle under PVC, want ~0.4", victimRate)
	}
}

func TestVMThroughputErrors(t *testing.T) {
	s := newSys(t)
	if _, err := s.AllocateVM(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BuildSharedRegion(qos.PVC, []MemoryLoad{{VM: 9, Share: 0.5, Offered: 0.1}}); err == nil {
		t.Fatal("missing VM accepted")
	}
	if _, err := s.BuildSharedRegion(qos.PVC, []MemoryLoad{{VM: 1, Share: 0.5, Offered: -1}}); err == nil {
		t.Fatal("negative offered load accepted")
	}
}

func TestCostReport(t *testing.T) {
	s := newSys(t)
	r := s.Cost()
	if r.RoutersTotal != 64 || r.RoutersWithQoS != 8 {
		t.Fatalf("router counts %d/%d, want 64/8", r.RoutersWithQoS, r.RoutersTotal)
	}
	// The headline claim: forgoing QoS in the larger part of the die —
	// 7/8 of the QoS hardware budget here.
	if r.SavedAreaFraction < 0.85 || r.SavedAreaFraction >= 1 {
		t.Errorf("saved fraction %.2f, want 7/8", r.SavedAreaFraction)
	}
	if r.QoSAreaPerRouter <= 0 || r.SavedArea <= 0 {
		t.Error("cost report has non-positive areas")
	}
	if r.BaselineQoSArea <= r.TopoAwareQoSArea {
		t.Error("baseline must cost more than the topology-aware design")
	}
}

func TestIsolationVersusStarvationEndToEnd(t *testing.T) {
	// The full story in one test: same chip, same traffic; round-robin
	// arbitration starves the distant VM, PVC protects it.
	run := func(mode qos.Mode) map[chip.VMID]int64 {
		s := newSys(t)
		// VM 1 sits far from the hotspot rows, VM 2 close by.
		far := []chip.Coord{{X: 0, Y: 6}, {X: 1, Y: 6}, {X: 0, Y: 7}, {X: 1, Y: 7}}
		near := []chip.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1}}
		if _, err := s.Chip().AllocateDomain(1, far); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Chip().AllocateDomain(2, near); err != nil {
			t.Fatal(err)
		}
		loads := []MemoryLoad{
			{VM: 1, Share: 0.5, Offered: 0.8},
			{VM: 2, Share: 0.5, Offered: 0.8},
		}
		n, err := s.BuildSharedRegion(mode, loads)
		if err != nil {
			t.Fatal(err)
		}
		n.WarmupAndMeasure(5000, 25000)
		tp, err := s.VMThroughput(n, loads)
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	pvc := run(qos.PVC)
	ratioPVC := float64(pvc[1]) / float64(pvc[2])
	if ratioPVC < 0.8 || ratioPVC > 1.25 {
		t.Errorf("PVC VM throughput ratio %.2f, want ~1 (got %v)", ratioPVC, pvc)
	}
	// Sanity: the fairness metric across VMs is high under PVC.
	vals := []float64{float64(pvc[1]), float64(pvc[2])}
	if j := stats.JainIndex(vals); j < 0.99 {
		t.Errorf("PVC Jain index %.4f", j)
	}
}
