// Package core composes the paper's contribution into one programmable
// system: a highly integrated CMP whose shared resources are segregated
// into QoS-protected columns (internal/chip), reached over dedicated MECS
// row channels, with a cycle-accurate simulator of the protected region
// (internal/network) and the chip-wide cost accounting that motivates the
// whole design — QoS hardware in 8 routers instead of 64.
//
// A downstream user drives it like an OS/hypervisor would (Section 2.2):
// allocate convex domains for VMs, co-schedule threads, assign bandwidth
// shares, then run memory traffic through the shared region and observe
// guarantees.
package core

import (
	"fmt"

	"tanoq/internal/chip"
	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/physical"
	"tanoq/internal/qos"
	"tanoq/internal/sim"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// Config describes a topology-aware QoS system.
type Config struct {
	// Chip geometry; defaults to the paper's 256-tile, 8x8-node target.
	Chip chip.Config
	// RegionKind is the interconnect inside the shared column. The
	// paper's recommendation after the evaluation is DPS.
	RegionKind topology.Kind
	// FrameCycles is the PVC frame (guarantee granularity).
	FrameCycles sim.Cycle
	// Seed drives all stochastic traffic.
	Seed uint64
}

// DefaultConfig returns the paper's configuration with a DPS shared
// region.
func DefaultConfig() Config {
	return Config{
		Chip:        chip.DefaultConfig(),
		RegionKind:  topology.DPS,
		FrameCycles: qos.DefaultFrameCycles,
		Seed:        1,
	}
}

// System is a configured topology-aware CMP.
type System struct {
	cfg  Config
	chip *chip.Chip
	col  int // the shared column used for memory traffic
}

// NewSystem builds a system; the chip must have at least one shared
// column.
func NewSystem(cfg Config) (*System, error) {
	if cfg.RegionKind > topology.DPS {
		return nil, fmt.Errorf("core: unknown region topology %v", cfg.RegionKind)
	}
	if cfg.FrameCycles <= 0 {
		cfg.FrameCycles = qos.DefaultFrameCycles
	}
	c, err := chip.New(cfg.Chip)
	if err != nil {
		return nil, err
	}
	if len(cfg.Chip.SharedCols) == 0 {
		return nil, fmt.Errorf("core: topology-aware QoS needs at least one shared column")
	}
	return &System{cfg: cfg, chip: c, col: cfg.Chip.SharedCols[0]}, nil
}

// MustNewSystem panics on configuration errors.
func MustNewSystem(cfg Config) *System {
	s, err := NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Chip exposes the underlying chip model.
func (s *System) Chip() *chip.Chip { return s.chip }

// SharedColumn returns the column used for memory traffic.
func (s *System) SharedColumn() int { return s.col }

// AllocateVM finds and allocates a convex domain of at least nodeCount
// nodes.
func (s *System) AllocateVM(vm chip.VMID, nodeCount int) (*chip.Domain, error) {
	return s.chip.AutoAllocate(vm, nodeCount)
}

// ScheduleThreads places a VM's threads on its domain's core tiles.
func (s *System) ScheduleThreads(vm chip.VMID, threads []int) error {
	return s.chip.ScheduleThreads(vm, threads)
}

// MemoryLoad describes one VM's memory traffic demand.
type MemoryLoad struct {
	VM chip.VMID
	// Share is the VM's assigned fraction of shared-region bandwidth
	// (the SLA the OS programs into the QoS routers).
	Share float64
	// Offered is the VM's actual offered load in flits/cycle across its
	// whole domain (may exceed or undercut the share; QoS clips it).
	Offered float64
}

// BuildSharedRegion assembles the cycle-accurate shared-column network for
// the given per-VM memory loads: every allocated node streams
// address-interleaved requests at the column's memory controllers, entering
// the column as the row-input injector the chip geometry dictates.
func (s *System) BuildSharedRegion(mode qos.Mode, loads []MemoryLoad) (*network.Network, error) {
	shares := map[chip.VMID]float64{}
	for _, l := range loads {
		shares[l.VM] = l.Share
	}
	rates, err := s.chip.VMRates(s.col, shares)
	if err != nil {
		return nil, err
	}
	nodes := s.cfg.Chip.Height
	w := traffic.Workload{Name: "memory", Nodes: nodes}
	for _, l := range loads {
		d := s.chip.Domain(l.VM)
		if d == nil {
			return nil, fmt.Errorf("core: VM %d has no domain", l.VM)
		}
		if l.Offered < 0 {
			return nil, fmt.Errorf("core: VM %d offered load %v negative", l.VM, l.Offered)
		}
		perNode := l.Offered / float64(len(d.Nodes))
		for _, at := range d.Nodes {
			node, inj, err := s.chip.ColumnInjector(at, s.col)
			if err != nil {
				return nil, err
			}
			w.Specs = append(w.Specs, traffic.Spec{
				Flow:            noc.FlowID(int(node)*topology.InjectorsPerNode + inj),
				Node:            node,
				Rate:            perNode,
				RequestFraction: traffic.DefaultRequestFraction,
				// Address-interleaved across the column's MCs.
				Dest: traffic.DestFunc(func(r *sim.RNG) noc.NodeID {
					return noc.NodeID(r.Intn(nodes))
				}),
			})
		}
	}
	qcfg := qos.Config{
		Mode:          mode,
		FrameCycles:   s.cfg.FrameCycles,
		Rates:         rates,
		WindowPackets: qos.DefaultWindowPackets,
		AckDelay:      2,
	}
	return network.New(network.Config{
		Kind:     s.cfg.RegionKind,
		Nodes:    nodes,
		QoS:      qcfg,
		Workload: w,
		Seed:     s.cfg.Seed,
	})
}

// VMThroughput aggregates delivered shared-region flits per VM from a
// finished simulation.
func (s *System) VMThroughput(n *network.Network, loads []MemoryLoad) (map[chip.VMID]int64, error) {
	out := map[chip.VMID]int64{}
	byFlow := n.Stats().FlitsByFlow()
	for _, l := range loads {
		d := s.chip.Domain(l.VM)
		if d == nil {
			return nil, fmt.Errorf("core: VM %d has no domain", l.VM)
		}
		var total int64
		for _, at := range d.Nodes {
			f, err := s.chip.ColumnFlow(at, s.col)
			if err != nil {
				return nil, err
			}
			total += byFlow[f]
		}
		out[l.VM] = total
	}
	return out, nil
}

// VerifyInvariants audits the three OS-contract properties over the
// current allocation state: co-scheduling, convex-domain traffic
// containment, and cross-VM isolation on every unprotected channel for
// the canonical traffic set (all intra-domain pairs, every node's memory
// traffic, and all-pairs inter-VM transfers through the shared column).
func (s *System) VerifyInvariants() error {
	if err := s.chip.VerifyCoScheduling(); err != nil {
		return err
	}
	var flows []chip.Flow
	doms := s.chip.Domains()
	for _, d := range doms {
		if err := s.chip.DomainTrafficContained(d.VM); err != nil {
			return err
		}
		for _, a := range d.Nodes {
			for _, b := range d.Nodes {
				if a != b {
					flows = append(flows, chip.Flow{VM: d.VM, Route: chip.DirectRoute(a, b)})
				}
			}
			for y := 0; y < s.cfg.Chip.Height; y++ {
				r, err := s.chip.RouteToShared(a, s.col, y)
				if err != nil {
					return err
				}
				flows = append(flows, chip.Flow{VM: d.VM, Route: r})
			}
		}
	}
	for _, da := range doms {
		for _, db := range doms {
			if da.VM == db.VM {
				continue
			}
			r, err := s.chip.RouteInterVM(da.Nodes[0], db.Nodes[len(db.Nodes)-1])
			if err != nil {
				return err
			}
			flows = append(flows, chip.Flow{VM: da.VM, Route: r})
		}
	}
	if v := s.chip.VerifyIsolation(flows); len(v) != 0 {
		return v[0]
	}
	return nil
}

// CostReport quantifies the headline saving of the topology-aware
// approach: hardware QoS exists only in the shared columns instead of at
// every router on the chip.
type CostReport struct {
	RoutersTotal      int
	RoutersWithQoS    int
	QoSAreaPerRouter  float64 // mm² of flow state + preemption/ACK logic
	BaselineQoSArea   float64 // QoS at every router (Figure 1(a))
	TopoAwareQoSArea  float64 // QoS only in shared columns (Figure 1(b))
	SavedArea         float64
	SavedAreaFraction float64
}

// Cost evaluates the report for the configured shared-region topology.
func (s *System) Cost() CostReport {
	st := topology.StructureOf(s.cfg.RegionKind, s.cfg.Chip.Height,
		s.cfg.Chip.Height*topology.InjectorsPerNode)
	area := physical.RouterArea(st)
	perRouter := area.Total() * physical.QoSLogicAreaShare(st)
	total := s.cfg.Chip.Width * s.cfg.Chip.Height
	withQoS := len(s.cfg.Chip.SharedCols) * s.cfg.Chip.Height
	r := CostReport{
		RoutersTotal:     total,
		RoutersWithQoS:   withQoS,
		QoSAreaPerRouter: perRouter,
		BaselineQoSArea:  float64(total) * perRouter,
		TopoAwareQoSArea: float64(withQoS) * perRouter,
	}
	r.SavedArea = r.BaselineQoSArea - r.TopoAwareQoSArea
	if r.BaselineQoSArea > 0 {
		r.SavedAreaFraction = r.SavedArea / r.BaselineQoSArea
	}
	return r
}
