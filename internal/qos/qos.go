// Package qos implements the quality-of-service machinery of the paper's
// shared region: Preemptive Virtual Clock (PVC) [Grot, Keckler, Mutlu —
// MICRO 2009] flow-state tables, frame-based counter flushing, the reserved
// (rate-compliant) flit quota that throttles preemptions, and the two
// comparison policies used in the evaluation — idealized per-flow queueing
// (the preemption-free reference for Figure 6) and plain round-robin with
// no QoS (used to demonstrate hotspot starvation).
package qos

import (
	"fmt"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// Mode selects the QoS policy a network operates under.
type Mode uint8

const (
	// PVC is Preemptive Virtual Clock: flow-state tables at each QoS
	// router, dynamic priorities, preemption on buffer scarcity, ACK
	// network and source retransmission.
	PVC Mode = iota
	// PerFlowQueue is the idealized, preemption-free QoS reference:
	// every flow has a dedicated queue at every input, so no packet is
	// ever discarded. This is the baseline the paper measures PVC's
	// preemption slowdown against (Figure 6).
	PerFlowQueue
	// NoQoS arbitrates round-robin with no flow state at all. With a
	// hotspot workload, sources close to the hotspot capture the
	// bandwidth and distant sources starve — the paper's motivation for
	// QoS in the shared region.
	NoQoS
)

// Modes lists the evaluated policies in the paper's comparison order.
func Modes() []Mode { return []Mode{PVC, PerFlowQueue, NoQoS} }

// ModeByName resolves a mode from its String name — the single
// name-to-enum mapping shared by scenario files and trace headers.
func ModeByName(name string) (Mode, error) {
	for _, m := range Modes() {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("qos: unknown mode %q (want pvc, per-flow-queue, no-qos)", name)
}

func (m Mode) String() string {
	switch m {
	case PVC:
		return "pvc"
	case PerFlowQueue:
		return "per-flow-queue"
	case NoQoS:
		return "no-qos"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// DefaultFrameCycles is the PVC frame duration used throughout the paper's
// evaluation: bandwidth counters are flushed every 50 K cycles, which sets
// the granularity of the scheme's guarantees (Table 1).
const DefaultFrameCycles sim.Cycle = 50_000

// priorityScale is the fixed-point scale used to fold a flow's assigned
// service rate into its priority: priority = consumed × (scale / rate).
// 1024 gives < 0.1 % quantization error for rates down to 0.1 %.
const priorityScale = 1024

// PriorityQuantumFlits is the coarseness of PVC's dynamic priorities:
// bandwidth counters are compared in blocks of this many flits (hardware
// carries a truncated priority field in the packet header). The quantum is
// fine enough that service imbalances propagate through distributed
// arbiters within a couple of packets — the granularity behind Table 2's
// ~1 % throughput dispersion.
const PriorityQuantumFlits = 8

// PreemptionMarginClasses is the hysteresis of the preemption logic, in
// quantized priority classes: a victim must trail the requester by more
// than this many classes (PreemptionMarginFlits of bandwidth) before being
// discarded. Arbitration order reacts to single-quantum imbalances, but
// discarding a packet — which wastes its buffered flits and every hop it
// has traversed — is reserved for gross inversions. This separation keeps
// preemption incidence in Section 5.2's 0.04–7 % band instead of constant
// churn among statistically-jittering equal flows.
const PreemptionMarginClasses = 64

// PreemptionMarginFlits is the margin expressed in flits of bandwidth.
const PreemptionMarginFlits = PreemptionMarginClasses * PriorityQuantumFlits

// Config carries the QoS parameters of one simulated network.
type Config struct {
	Mode Mode
	// FrameCycles is the interval between flow-counter flushes.
	FrameCycles sim.Cycle
	// Rates is the assigned service rate of each flow as a fraction of
	// link bandwidth (flits/cycle). Rates need not sum to 1; PVC uses
	// them only relatively, to scale priorities, and absolutely, to size
	// the reserved per-frame quota.
	Rates []float64
	// WindowPackets bounds the number of unacknowledged packets a source
	// may have in flight (the PVC retransmission window).
	WindowPackets int
	// AckDelay is the extra latency of the dedicated ACK network beyond
	// the hop distance, in cycles.
	AckDelay sim.Cycle

	// QuantumFlits overrides the priority quantization (default
	// PriorityQuantumFlits; must be a power of two). Coarser quanta
	// carry fewer header bits but let merge points drift further from
	// fairness before the priorities react.
	QuantumFlits int
	// MarginClasses overrides the preemption hysteresis (default
	// PreemptionMarginClasses). Smaller margins preempt more eagerly —
	// tighter inversion bounds, more replayed bandwidth.
	MarginClasses int
	// DisableReservedQuota switches off the rate-compliant flit quota,
	// exposing how PVC behaves without its main preemption throttle.
	DisableReservedQuota bool
}

// EffectiveQuantum returns the priority quantum in force.
func (c *Config) EffectiveQuantum() int {
	if c.QuantumFlits == 0 {
		return PriorityQuantumFlits
	}
	return c.QuantumFlits
}

// EffectiveMargin returns the preemption hysteresis in force.
func (c *Config) EffectiveMargin() int {
	if c.MarginClasses == 0 {
		return PreemptionMarginClasses
	}
	return c.MarginClasses
}

// DefaultWindowPackets is the per-source outstanding-packet window: how
// many unacknowledged packets a source may have in the network (each needs
// a replay-buffer slot for retransmission). It must cover the delivery +
// ACK round trip *including queueing delay at saturation*, or the window
// — not the QoS arbiter — ends up rationing distant flows' bandwidth and
// distorting fairness.
const DefaultWindowPackets = 64

// DefaultConfig returns the paper's evaluation configuration for n flows
// with equal assigned rates.
func DefaultConfig(n int) Config {
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 1.0 / float64(n)
	}
	return Config{
		Mode:          PVC,
		FrameCycles:   DefaultFrameCycles,
		Rates:         rates,
		WindowPackets: DefaultWindowPackets,
		AckDelay:      2,
	}
}

// Validate reports configuration errors a constructor should reject.
func (c *Config) Validate() error {
	if len(c.Rates) == 0 {
		return fmt.Errorf("qos: no flows configured")
	}
	for f, r := range c.Rates {
		if r <= 0 {
			return fmt.Errorf("qos: flow %d has non-positive rate %v", f, r)
		}
	}
	if c.Mode == PVC && c.FrameCycles <= 0 {
		return fmt.Errorf("qos: PVC requires a positive frame duration, got %d", c.FrameCycles)
	}
	if c.WindowPackets <= 0 {
		return fmt.Errorf("qos: window must be positive, got %d", c.WindowPackets)
	}
	if q := c.EffectiveQuantum(); q < 1 || q&(q-1) != 0 {
		return fmt.Errorf("qos: priority quantum %d must be a power of two", q)
	}
	if c.MarginClasses < 0 {
		return fmt.Errorf("qos: negative preemption margin %d", c.MarginClasses)
	}
	return nil
}

// FlowTable is the per-router PVC flow state: one bandwidth counter per
// flow, scaled by the flow's assigned rate to yield a dynamic priority.
// Routers record every flit they forward; counters are cleared at frame
// boundaries so a flow's past consumption stops weighing on its present
// priority. Table size is proportional to the number of flows — exactly
// the per-flow state the paper charges to PVC's area budget (Figure 3).
//
// Priorities are cached in a flat per-flow array maintained eagerly:
// recomputed on Record (once per grant) and zeroed on Flush (once per
// frame), so the arbitration hot path — which reads Priority per
// candidate per allocation per cycle — costs a single array load instead
// of re-deriving quantize-and-scale each time. The cached value is
// produced by exactly the arithmetic Priority used to perform, so results
// are bit-identical.
type FlowTable struct {
	consumed []uint64       // flits forwarded this frame, per flow
	weight   []uint64       // fixed-point 1/rate per flow
	prio     []noc.Priority // cached (consumed >> shift) * weight, per flow
	shift    uint           // log2 of the priority quantum in flits
}

// NewFlowTable builds a table for the given per-flow rates with the
// default priority quantum.
func NewFlowTable(rates []float64) *FlowTable {
	return NewFlowTableWithQuantum(rates, PriorityQuantumFlits)
}

// NewFlowTableWithQuantum builds a table whose priorities are quantized to
// the given block size in flits (a power of two).
func NewFlowTableWithQuantum(rates []float64, quantumFlits int) *FlowTable {
	t := &FlowTable{}
	t.Reinit(rates, quantumFlits)
	return t
}

// Reinit re-seeds the table for a fresh simulation over the given rates,
// reusing the existing backing arrays when their capacity suffices. It is
// the allocation-reuse path of Network.Reset: a sweep worker re-running
// cells re-targets each port's table instead of reallocating three slices
// per port per cell.
func (t *FlowTable) Reinit(rates []float64, quantumFlits int) {
	if quantumFlits < 1 || quantumFlits&(quantumFlits-1) != 0 {
		panic(fmt.Sprintf("qos: priority quantum %d must be a power of two", quantumFlits))
	}
	shift := uint(0)
	for 1<<shift < quantumFlits {
		shift++
	}
	t.shift = shift
	t.consumed = resetUints(t.consumed, len(rates))
	t.weight = resetUints(t.weight, len(rates))
	t.prio = resetPrios(t.prio, len(rates))
	for f, r := range rates {
		if r <= 0 {
			panic(fmt.Sprintf("qos: flow %d rate %v must be positive", f, r))
		}
		w := uint64(priorityScale/r + 0.5)
		if w == 0 {
			w = 1
		}
		t.weight[f] = w
	}
}

// resetUints returns a zeroed slice of length n, reusing s's backing
// array when it is large enough.
func resetUints(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resetPrios is resetUints for priority slices.
func resetPrios(s []noc.Priority, n int) []noc.Priority {
	if cap(s) < n {
		return make([]noc.Priority, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// NumFlows returns the number of flows tracked.
func (t *FlowTable) NumFlows() int { return len(t.consumed) }

// Record charges flits of bandwidth to flow f and refreshes the flow's
// cached priority.
func (t *FlowTable) Record(f noc.FlowID, flits int) {
	c := t.consumed[f] + uint64(flits)
	t.consumed[f] = c
	t.prio[f] = noc.Priority((c >> t.shift) * t.weight[f])
}

// Consumed returns the flits charged to flow f in the current frame.
func (t *FlowTable) Consumed(f noc.FlowID) uint64 { return t.consumed[f] }

// Priority returns flow f's dynamic priority: consumption, quantized to
// the table's quantum, scaled by the inverse assigned rate. Lower is
// better — a flow that has used little of its entitlement wins
// arbitration. The value is served from the eagerly-maintained cache; it
// changes only inside Record and Flush.
func (t *FlowTable) Priority(f noc.FlowID) noc.Priority {
	return t.prio[f]
}

// Priorities exposes the flat cached-priority array for hot loops that
// index it directly (the engine's arbitration candidate scan). The slice
// is owned by the table: read-only, invalidated by Reinit.
func (t *FlowTable) Priorities() []noc.Priority { return t.prio }

// PriorityStep returns the priority-unit width of one quantized class for
// flow f (its fixed-point inverse rate). The preemption logic uses it as a
// hysteresis margin: a victim must trail the requester by more than one
// full class before being discarded, so single-class statistical jitter
// among equally-served flows never triggers preemptions.
func (t *FlowTable) PriorityStep(f noc.FlowID) noc.Priority {
	return noc.Priority(t.weight[f])
}

// Flush clears all bandwidth counters and cached priorities (a frame
// boundary).
func (t *FlowTable) Flush() {
	for i := range t.consumed {
		t.consumed[i] = 0
	}
	for i := range t.prio {
		t.prio[i] = 0
	}
}

// ReservedQuota implements PVC's preemption throttle: in each frame the
// first rate×frame flits a source injects are rate-compliant. Compliant
// packets may claim the reserved VC at each network port and are never
// preempted. With all sources transmitting within their allocations,
// virtually all traffic falls under the cap and preemptions vanish
// (Section 5.3).
type ReservedQuota struct {
	perFrame  []int64
	remaining []int64
}

// NewReservedQuota sizes each flow's per-frame quota from its assigned
// rate: quota = rate × frame, in flits.
func NewReservedQuota(rates []float64, frame sim.Cycle) *ReservedQuota {
	q := &ReservedQuota{}
	q.Reinit(rates, frame)
	return q
}

// Reinit re-seeds the quota for a fresh simulation, reusing the backing
// arrays when capacity suffices (the Network.Reset reuse path).
func (q *ReservedQuota) Reinit(rates []float64, frame sim.Cycle) {
	if cap(q.perFrame) < len(rates) {
		q.perFrame = make([]int64, len(rates))
		q.remaining = make([]int64, len(rates))
	}
	q.perFrame = q.perFrame[:len(rates)]
	q.remaining = q.remaining[:len(rates)]
	for f, r := range rates {
		n := int64(r * float64(frame))
		if n < 0 {
			n = 0
		}
		q.perFrame[f] = n
		q.remaining[f] = n
	}
}

// TryConsume attempts to charge flits against flow f's remaining quota.
// It returns true — and the packet should be marked rate-compliant — only
// when the whole packet fits under the cap.
func (q *ReservedQuota) TryConsume(f noc.FlowID, flits int) bool {
	if q.remaining[f] < int64(flits) {
		return false
	}
	q.remaining[f] -= int64(flits)
	return true
}

// Remaining returns flow f's unconsumed quota in the current frame.
func (q *ReservedQuota) Remaining(f noc.FlowID) int64 { return q.remaining[f] }

// Refill resets every flow's quota (a frame boundary).
func (q *ReservedQuota) Refill() {
	copy(q.remaining, q.perFrame)
}

// FrameTimer tracks PVC frame boundaries. The engine calls Expired once
// per cycle; when it fires, flow tables are flushed and quotas refilled.
type FrameTimer struct {
	frame sim.Cycle
	next  sim.Cycle
	count int
}

// NewFrameTimer creates a timer with the given frame duration.
func NewFrameTimer(frame sim.Cycle) *FrameTimer {
	t := &FrameTimer{}
	t.Reinit(frame)
	return t
}

// Reinit rewinds the timer to cycle zero with the given frame duration
// (the Network.Reset reuse path).
func (t *FrameTimer) Reinit(frame sim.Cycle) {
	if frame <= 0 {
		panic("qos: frame duration must be positive")
	}
	*t = FrameTimer{frame: frame, next: frame}
}

// Expired reports whether a frame boundary is crossed at cycle now, and
// advances to the next frame when it is.
func (t *FrameTimer) Expired(now sim.Cycle) bool {
	if now < t.next {
		return false
	}
	t.next += t.frame
	t.count++
	return true
}

// Frames returns how many frame boundaries have fired.
func (t *FrameTimer) Frames() int { return t.count }

// Next returns the cycle of the next frame boundary. The event-driven
// engine folds it into its next-wake computation so that idle fast-forwards
// never jump over a counter flush or quota refill.
func (t *FrameTimer) Next() sim.Cycle { return t.next }
