package qos

import (
	"testing"
	"testing/quick"

	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

func equalRates(n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = 1.0 / float64(n)
	}
	return r
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{PVC: "pvc", PerFlowQueue: "per-flow-queue", NoQoS: "no-qos"}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m, want)
		}
	}
}

func TestDefaultConfigValid(t *testing.T) {
	c := DefaultConfig(64)
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if len(c.Rates) != 64 {
		t.Fatalf("rates len = %d", len(c.Rates))
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no flows", func(c *Config) { c.Rates = nil }},
		{"zero rate", func(c *Config) { c.Rates[3] = 0 }},
		{"negative rate", func(c *Config) { c.Rates[0] = -0.1 }},
		{"zero frame", func(c *Config) { c.FrameCycles = 0 }},
		{"zero window", func(c *Config) { c.WindowPackets = 0 }},
	}
	for _, tc := range cases {
		c := DefaultConfig(8)
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
}

func TestFlowTablePriorityGrowsWithConsumption(t *testing.T) {
	ft := NewFlowTable(equalRates(4))
	p0 := ft.Priority(0)
	ft.Record(0, 2*PriorityQuantumFlits)
	p1 := ft.Priority(0)
	ft.Record(0, 2*PriorityQuantumFlits)
	p2 := ft.Priority(0)
	if !(p0 < p1 && p1 < p2) {
		t.Fatalf("priority not monotonic: %d, %d, %d", p0, p1, p2)
	}
}

func TestFlowTablePriorityQuantized(t *testing.T) {
	// Consumption differences below a quantum must tie: preemption and
	// arbitration treat near-equal flows as equal (Section 5.2's low
	// preemption incidence depends on this).
	ft := NewFlowTable(equalRates(2))
	ft.Record(0, PriorityQuantumFlits-1)
	if ft.Priority(0) != ft.Priority(1) {
		t.Fatalf("sub-quantum imbalance changed priority class: %d vs %d",
			ft.Priority(0), ft.Priority(1))
	}
	ft.Record(0, 1)
	if ft.Priority(0) <= ft.Priority(1) {
		t.Fatal("full quantum should move the flow to a worse class")
	}
}

func TestFlowTableEqualRatesEqualScaling(t *testing.T) {
	ft := NewFlowTable(equalRates(8))
	ft.Record(2, 10)
	ft.Record(5, 10)
	if ft.Priority(2) != ft.Priority(5) {
		t.Fatalf("equal consumption, equal rates, unequal priorities: %d vs %d",
			ft.Priority(2), ft.Priority(5))
	}
}

func TestFlowTableRateScaling(t *testing.T) {
	// Flow 0 is entitled to 4x the rate of flow 1. After consuming the
	// same bandwidth, flow 0 must have the better (lower) priority.
	ft := NewFlowTable([]float64{0.4, 0.1})
	ft.Record(0, 20*PriorityQuantumFlits)
	ft.Record(1, 20*PriorityQuantumFlits)
	if ft.Priority(0) >= ft.Priority(1) {
		t.Fatalf("high-rate flow should have better priority: %d vs %d",
			ft.Priority(0), ft.Priority(1))
	}
	// And the ratio should be roughly the inverse rate ratio (4x).
	ratio := float64(ft.Priority(1)) / float64(ft.Priority(0))
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("priority ratio = %v, want ~4", ratio)
	}
}

func TestFlowTableFlush(t *testing.T) {
	ft := NewFlowTable(equalRates(3))
	ft.Record(1, 100)
	ft.Flush()
	if ft.Priority(1) != 0 || ft.Consumed(1) != 0 {
		t.Fatal("flush did not clear counters")
	}
}

func TestFlowTablePanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	NewFlowTable([]float64{0.5, 0})
}

func TestFlowTablePriorityMonotonicProperty(t *testing.T) {
	// Priority classes never improve as consumption grows.
	ft := NewFlowTable(equalRates(2))
	prev := noc.Priority(0)
	check := func(flits uint8) bool {
		ft.Record(0, int(flits)+1)
		p := ft.Priority(0)
		ok := p >= prev
		prev = p
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReservedQuotaConsume(t *testing.T) {
	// rate 0.1 over a 100-cycle frame = 10 flits of quota.
	q := NewReservedQuota([]float64{0.1}, 100)
	if q.Remaining(0) != 10 {
		t.Fatalf("quota = %d, want 10", q.Remaining(0))
	}
	for i := 0; i < 10; i++ {
		if !q.TryConsume(0, 1) {
			t.Fatalf("consume %d failed under quota", i)
		}
	}
	if q.TryConsume(0, 1) {
		t.Fatal("consume succeeded past quota")
	}
	q.Refill()
	if q.Remaining(0) != 10 {
		t.Fatal("refill did not restore quota")
	}
}

func TestReservedQuotaWholePacketSemantics(t *testing.T) {
	q := NewReservedQuota([]float64{0.03}, 100) // 3 flits
	if q.TryConsume(0, 4) {
		t.Fatal("4-flit packet admitted under 3-flit quota")
	}
	if q.Remaining(0) != 3 {
		t.Fatal("failed TryConsume must not charge quota")
	}
	if !q.TryConsume(0, 3) {
		t.Fatal("3 flits rejected under 3-flit quota")
	}
}

func TestReservedQuotaNeverNegativeProperty(t *testing.T) {
	q := NewReservedQuota([]float64{0.25, 0.5}, 200)
	check := func(flow bool, flits uint8) bool {
		f := noc.FlowID(0)
		if flow {
			f = 1
		}
		q.TryConsume(f, int(flits%8))
		return q.Remaining(f) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFrameTimer(t *testing.T) {
	ft := NewFrameTimer(50)
	fires := 0
	for now := sim.Cycle(0); now <= 200; now++ {
		if ft.Expired(now) {
			fires++
		}
	}
	if fires != 4 { // at 50, 100, 150, 200
		t.Fatalf("fires = %d, want 4", fires)
	}
	if ft.Frames() != 4 {
		t.Fatalf("Frames() = %d, want 4", ft.Frames())
	}
}

func TestFrameTimerNext(t *testing.T) {
	ft := NewFrameTimer(50)
	if ft.Next() != 50 {
		t.Fatalf("fresh timer Next() = %d, want 50", ft.Next())
	}
	if !ft.Expired(50) {
		t.Fatal("boundary did not fire")
	}
	// Next always reports the upcoming boundary — the cycle an idle
	// fast-forward must not jump past.
	if ft.Next() != 100 {
		t.Fatalf("after one boundary Next() = %d, want 100", ft.Next())
	}
	if ft.Expired(99) {
		t.Fatal("fired before the boundary")
	}
}

func TestFrameTimerPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frame did not panic")
		}
	}()
	NewFrameTimer(0)
}

func TestBetterOrdering(t *testing.T) {
	pa := &noc.Packet{ID: 1}
	pb := &noc.Packet{ID: 2}
	a := Candidate{Packet: pa, Priority: 10, Enqueued: 5}
	b := Candidate{Packet: pb, Priority: 20, Enqueued: 1}
	if !Better(a, b) {
		t.Fatal("lower priority value must win")
	}
	// Equal priority: older wins.
	b.Priority = 10
	if Better(a, b) || !Better(b, a) {
		t.Fatal("older candidate must win at equal priority")
	}
	// Full tie: lower ID wins.
	b.Enqueued = 5
	if !Better(a, b) {
		t.Fatal("lower ID must win on full tie")
	}
}

func TestBetterIsStrictTotalOrderProperty(t *testing.T) {
	mk := func(prio uint16, enq uint8, id uint8) Candidate {
		return Candidate{
			Packet:   &noc.Packet{ID: uint64(id)},
			Priority: noc.Priority(prio),
			Enqueued: sim.Cycle(enq),
		}
	}
	check := func(p1, p2 uint16, e1, e2, i1, i2 uint8) bool {
		a, b := mk(p1, e1, i1), mk(p2, e2, i2)
		if a.Priority == b.Priority && a.Enqueued == b.Enqueued && a.Packet.ID == b.Packet.ID {
			return !Better(a, b) && !Better(b, a) // irreflexive on equals
		}
		return Better(a, b) != Better(b, a) // antisymmetric & total
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPickPVC(t *testing.T) {
	if PickPVC(nil) != -1 {
		t.Fatal("empty candidate list should return -1")
	}
	cands := []Candidate{
		{Packet: &noc.Packet{ID: 1}, Priority: 30},
		{Packet: &noc.Packet{ID: 2}, Priority: 10},
		{Packet: &noc.Packet{ID: 3}, Priority: 20},
	}
	if got := PickPVC(cands); got != 1 {
		t.Fatalf("PickPVC = %d, want 1", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	var rr RoundRobin
	all := func(int) bool { return true }
	got := []int{}
	for i := 0; i < 8; i++ {
		got = append(got, rr.Pick(4, all))
	}
	want := []int{1, 2, 3, 0, 1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsIdle(t *testing.T) {
	var rr RoundRobin
	only2 := func(i int) bool { return i == 2 }
	for i := 0; i < 5; i++ {
		if got := rr.Pick(4, only2); got != 2 {
			t.Fatalf("Pick = %d, want 2", got)
		}
	}
	if rr.Pick(4, func(int) bool { return false }) != -1 {
		t.Fatal("no requesters should yield -1")
	}
	if rr.Pick(0, only2) != -1 {
		t.Fatal("n=0 should yield -1")
	}
}

func TestRoundRobinFairnessUnderFullLoad(t *testing.T) {
	var rr RoundRobin
	counts := make([]int, 5)
	all := func(int) bool { return true }
	for i := 0; i < 5000; i++ {
		counts[rr.Pick(5, all)]++
	}
	for i, c := range counts {
		if c != 1000 {
			t.Errorf("position %d granted %d times, want 1000", i, c)
		}
	}
}

func TestPickOldest(t *testing.T) {
	cands := []Candidate{
		{Packet: &noc.Packet{ID: 5}, Enqueued: 30},
		{Packet: &noc.Packet{ID: 6}, Enqueued: 10},
		{Packet: &noc.Packet{ID: 7}, Enqueued: 10},
	}
	if got := PickOldest(cands); got != 1 {
		t.Fatalf("PickOldest = %d, want 1 (oldest, lowest ID)", got)
	}
	if PickOldest(nil) != -1 {
		t.Fatal("empty list should return -1")
	}
}

func TestEffectiveQuantumAndMargin(t *testing.T) {
	c := DefaultConfig(4)
	if c.EffectiveQuantum() != PriorityQuantumFlits {
		t.Errorf("default quantum = %d", c.EffectiveQuantum())
	}
	if c.EffectiveMargin() != PreemptionMarginClasses {
		t.Errorf("default margin = %d", c.EffectiveMargin())
	}
	c.QuantumFlits = 32
	c.MarginClasses = 4
	if c.EffectiveQuantum() != 32 || c.EffectiveMargin() != 4 {
		t.Error("overrides not honoured")
	}
}

func TestConfigValidateQuantumAndMargin(t *testing.T) {
	c := DefaultConfig(4)
	c.QuantumFlits = 12
	if err := c.Validate(); err == nil {
		t.Error("non-power-of-two quantum accepted")
	}
	c = DefaultConfig(4)
	c.MarginClasses = -1
	if err := c.Validate(); err == nil {
		t.Error("negative margin accepted")
	}
	c = DefaultConfig(4)
	c.QuantumFlits = 64
	if err := c.Validate(); err != nil {
		t.Errorf("valid override rejected: %v", err)
	}
}

func TestNewFlowTableWithQuantumPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("quantum 3 did not panic")
		}
	}()
	NewFlowTableWithQuantum(equalRates(2), 3)
}

func TestFlowTableQuantumGranularity(t *testing.T) {
	fine := NewFlowTableWithQuantum(equalRates(2), 1)
	coarse := NewFlowTableWithQuantum(equalRates(2), 256)
	fine.Record(0, 10)
	coarse.Record(0, 10)
	if fine.Priority(0) == 0 {
		t.Error("quantum 1 should register 10 flits")
	}
	if coarse.Priority(0) != 0 {
		t.Error("quantum 256 should not register 10 flits")
	}
}

func TestModeStringUnknown(t *testing.T) {
	if s := Mode(99).String(); s != "mode(99)" {
		t.Errorf("unknown mode string %q", s)
	}
}
