package qos

import (
	"tanoq/internal/noc"
	"tanoq/internal/sim"
)

// Candidate is one packet competing for an output resource during virtual
// channel allocation. The arbiter sees only what real PVC hardware sees:
// the carried/dynamic priority, the rate-compliance bit, and — for
// determinism in ties — age and identity.
type Candidate struct {
	Packet   *noc.Packet
	Priority noc.Priority
	// Enqueued is when the packet became ready at this router, used as
	// the first tie-breaker (oldest first), matching the FIFO order a
	// hardware matrix arbiter degenerates to under equal priorities.
	Enqueued sim.Cycle
}

// Better reports whether candidate a should win arbitration over b under
// PVC: strictly lower priority value first, then older, then lower packet
// ID (a deterministic stand-in for hardware's fixed port ordering).
func Better(a, b Candidate) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.Enqueued != b.Enqueued {
		return a.Enqueued < b.Enqueued
	}
	return a.Packet.ID < b.Packet.ID
}

// PickPVC returns the index of the winning candidate under PVC ordering,
// or -1 when there are no candidates.
func PickPVC(cands []Candidate) int {
	best := -1
	for i := range cands {
		if best < 0 || Better(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

// RoundRobin is a positional round-robin arbiter used by the NoQoS policy.
// It has no notion of flows: it simply rotates priority among requesting
// positions, which is locally fair but — as the paper's motivation shows —
// globally unfair in a multi-hop network, because each merge point halves
// the share of upstream traffic (the parking-lot effect).
type RoundRobin struct {
	last int
}

// Pick selects among n positions, of which requesting(i) reports whether
// position i wants the grant. It returns -1 when nobody requests.
func (r *RoundRobin) Pick(n int, requesting func(int) bool) int {
	if n <= 0 {
		return -1
	}
	for off := 1; off <= n; off++ {
		i := (r.last + off) % n
		if requesting(i) {
			r.last = i
			return i
		}
	}
	return -1
}

// PickOldest returns the index of the oldest candidate (FIFO order), the
// scheduling rule of the idealized per-flow-queue reference once every
// flow has a private queue: the paper's preemption-free baseline schedules
// by the same virtual-clock priorities, so PerFlowQueue mode still uses
// PickPVC; PickOldest is used for plain FIFO ejection draining.
func PickOldest(cands []Candidate) int {
	best := -1
	for i := range cands {
		if best < 0 || cands[i].Enqueued < cands[best].Enqueued ||
			(cands[i].Enqueued == cands[best].Enqueued && cands[i].Packet.ID < cands[best].Packet.ID) {
			best = i
		}
	}
	return best
}
