package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tanoq/internal/network"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
)

// Cell is one independent simulation: a network configuration plus its
// warmup/measurement schedule. Each cell builds and owns a private
// Network, so cells never share mutable state.
type Cell struct {
	Config network.Config
	// Warmup cycles run with measurement paused; Measure cycles follow
	// with the collector live (Network.WarmupAndMeasure).
	Warmup  int
	Measure int
	// Setup, when non-nil, runs after the cell's network is built or
	// reset and before warmup. It attaches auxiliary drivers — a
	// closed-loop client controller, a trace recorder — to the fresh
	// network (Network.Reset clears workload hooks precisely so that a
	// cell without Setup inherits nothing from its slot's previous
	// cell). Whatever it returns is surfaced on Result.Aux. Setup runs
	// on the worker goroutine and must touch only per-cell state.
	Setup func(*network.Network) any

	// Retries is the cell's failure budget: how many times a panicked
	// attempt (invalid configuration, tripped watchdog, failed audit,
	// missed deadline) is re-run on a freshly built network before the
	// cell is reported failed. 0 inherits Options.Retries (RunCells
	// defaults to 1, the historical behavior); negative disables
	// retrying entirely.
	Retries int
	// Backoff is the base delay slept before the first retry; each later
	// retry doubles it (exponential backoff, capped at 30s). 0 inherits
	// Options.Backoff; negative disables backoff for this cell.
	Backoff time.Duration
	// Deadline is the cell's wall-clock budget per attempt. When it
	// expires the engine is aborted at the next cycle boundary and the
	// attempt fails with ErrDeadline (counting against the retry
	// budget). It complements the cycle-based watchdog: the watchdog
	// catches stalled simulated progress, the deadline catches
	// host-level livelock — a wedged workload hook, a pathological cell
	// that crawls in wall time. 0 inherits Options.Deadline; negative
	// disables the deadline for this cell.
	Deadline time.Duration

	// Group, when nonzero, marks the cell as seed-batchable: cells
	// sharing a Group value are identical except for Config.Seed (and a
	// Setup closure differing only by that seed) and may execute as
	// lanes of one network.Ensemble when Options.Lanes allows. The
	// grouping is an execution strategy, never a semantic one — results
	// are bit-identical whether a cell runs standalone or as a lane.
	// Callers that cannot guarantee the identical-except-seed contract
	// must leave Group zero.
	Group int
}

// Result is the outcome of one cell.
type Result struct {
	// Stats is the cell's measurement collector, owned by the caller
	// once RunCells returns. Nil when the cell failed (see Err).
	Stats *stats.Collector
	// End is the simulation cycle at the end of the measurement window
	// (the `now` argument of rate metrics such as AcceptedFlitRate).
	End sim.Cycle
	// Aux is whatever the cell's Setup returned (nil without one) —
	// typically the attached driver, read back for its statistics.
	Aux any
	// Err reports a cell that produced no result: every attempt panicked
	// (an invalid configuration, a tripped watchdog, a failed invariant
	// audit), every attempt missed its wall-clock deadline (ErrDeadline),
	// or the sweep was cancelled before the cell was issued (ErrSkipped).
	// A failed cell does not abort the rest of the sweep.
	Err error
	// Attempts is how many times the cell ran (1 normally, more after
	// retries, 0 when cancellation skipped it entirely).
	Attempts int
	// Elapsed is the wall-clock time the successful attempt spent
	// simulating (the WarmupAndMeasure call). A cell that ran as an
	// ensemble lane reports its batch's elapsed time divided by the lane
	// count — the amortized per-seed cost, which is what a throughput
	// column should show for lockstep execution. Zero for failed cells.
	Elapsed time.Duration
	// Worker is the worker-slot index that produced the result (-1 for
	// cells skipped before any worker claimed them) — per-worker
	// throughput attribution for live sweep metrics. Purely
	// observational: results are bit-identical for every worker count.
	Worker int
}

// Failed reports whether the cell produced no result.
func (r *Result) Failed() bool { return r.Err != nil }

// ErrDeadline marks an attempt killed by its wall-clock deadline.
var ErrDeadline = errors.New("wall-clock deadline exceeded")

// ErrSkipped marks a cell never issued because the sweep's context was
// cancelled first. Its Result carries Attempts == 0 and no stats.
var ErrSkipped = errors.New("cell skipped: sweep cancelled")

// MustOK panics on the first failed cell of a sweep — for experiment
// drivers whose cells are all expected to succeed, keeping their
// fail-fast behavior now that RunCells contains per-cell panics.
func MustOK(results []Result) {
	for i := range results {
		if results[i].Err != nil {
			panic(fmt.Sprintf("runner: cell %d failed after %d attempts: %v", i, results[i].Attempts, results[i].Err))
		}
	}
}

// Workers resolves a requested worker count: n <= 0 selects one worker
// per CPU (GOMAXPROCS), anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do executes fn(i) for every i in [0, jobs) across a pool of workers.
// Jobs are claimed from a shared atomic counter, so long and short cells
// interleave without static partitioning imbalance. fn must not touch
// state shared with other jobs. A panic in any job is re-raised on the
// calling goroutine after all workers have stopped.
func Do(jobs, workers int, fn func(job int)) {
	DoWorker(jobs, workers, func(job, _ int) { fn(job) })
}

// DoWorker is Do with the worker's pool slot passed alongside the job
// index: fn(job, worker) with worker in [0, effective workers). All jobs
// run by the same worker share its slot, which is what lets callers keep
// per-worker reusable state (runner cells reuse one simulation engine per
// slot via Network.Reset) without any locking — a slot never runs two
// jobs concurrently.
func DoWorker(jobs, workers int, fn func(job, worker int)) {
	DoWorkerCtx(context.Background(), jobs, workers, fn)
}

// DoWorkerCtx is DoWorker with cooperative cancellation: once ctx is
// done, workers stop claiming new jobs, but jobs already claimed run to
// completion — a drain, not a kill. Jobs never issued are simply never
// run; callers that need to know which ones must track it themselves
// (RunCellsCtx marks them ErrSkipped via Attempts == 0).
func DoWorkerCtx(ctx context.Context, jobs, workers int, fn func(job, worker int)) {
	if jobs <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i, 0)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for panicked.Load() == nil && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				runJob(i, slot, fn, &panicked)
			}
		}(w)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic so it can travel through an atomic
// pointer back to the calling goroutine.
type panicValue struct{ v any }

// runJob runs one job, converting a panic into a recorded first-panic so
// the pool can drain instead of crashing the process from a worker.
func runJob(i, slot int, fn func(int, int), panicked *atomic.Pointer[panicValue]) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, &panicValue{v: r})
		}
	}()
	fn(i, slot)
}

// Map runs fn over [0, jobs) like Do and collects the results in input
// order: element i of the returned slice is fn(i), regardless of worker
// count or completion order.
func Map[T any](jobs, workers int, fn func(job int) T) []T {
	out := make([]T, jobs)
	Do(jobs, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// Options tunes RunCellsCtx. The zero value means: one worker per CPU,
// no retries, no backoff, no deadline.
type Options struct {
	// Workers is the pool size (see Workers).
	Workers int
	// Retries is the default per-cell failure budget, overridden by
	// Cell.Retries (there, negative disables; here, 0 simply means no
	// retries).
	Retries int
	// Backoff is the default base retry delay (exponential per extra
	// attempt, capped at 30s), overridden by Cell.Backoff.
	Backoff time.Duration
	// Deadline is the default per-attempt wall-clock budget, overridden
	// by Cell.Deadline. 0 = unlimited.
	Deadline time.Duration
	// OnResult, when non-nil, observes every finished cell — success or
	// failure — as soon as its result lands, on the worker goroutine
	// that ran it. This is the checkpoint surface: a durable sweep
	// persists each row the moment it exists, so an interrupted process
	// loses at most its in-flight cells. It must be safe for concurrent
	// calls from different workers; cells skipped by cancellation are
	// NOT reported through it.
	OnResult func(job int, r *Result)
	// Lanes enables ensemble lockstep execution: up to this many cells
	// sharing a nonzero Cell.Group run as lanes of one network.Ensemble
	// (see PlanUnits). 0 or 1 runs every cell standalone. Results are
	// bit-identical either way; lanes only change how fast the batch
	// goes.
	Lanes int
}

// maxBackoff caps the exponential retry delay.
const maxBackoff = 30 * time.Second

// resolve layers a cell override on an option default: 0 inherits,
// negative disables.
func resolve[T int | time.Duration](cell, opt T) T {
	switch {
	case cell < 0:
		return 0
	case cell > 0:
		return cell
	default:
		return opt
	}
}

// RunCells executes every cell across the worker pool and returns the
// results in input order, retrying each failed cell once (the historical
// default; use RunCellsCtx for configurable budgets, deadlines and
// cancellation). Each worker slot keeps one reusable Network: the first
// cell a slot runs builds it, and every later cell re-targets it in
// place via Network.Reset, so a whole sweep grid reuses one packet
// arena, event ring and router state per worker instead of reallocating
// them per cell. Because each cell's randomness derives entirely from
// its own Config.Seed — and a Reset network is bit-identical to a
// freshly built one — the results are bit-identical for every worker
// count and identical to building each cell from scratch.
func RunCells(cells []Cell, workers int) []Result {
	return RunCellsCtx(context.Background(), cells, Options{Workers: workers, Retries: 1})
}

// RunCellsCtx is the durable variant of RunCells: per-cell wall-clock
// deadlines, configurable retry budgets with exponential backoff, an
// OnResult checkpoint callback, and cooperative cancellation.
//
// A cell that fails an attempt — a panic (invalid configuration, tripped
// watchdog, failed invariant audit) or a missed deadline — does not take
// the sweep down: the slot's engine (possibly corrupted mid-simulation)
// is discarded, the cell is retried on a freshly built network up to its
// retry budget, and the final failure is reported on Result.Err with the
// rest of the grid unaffected. Deadlines are enforced by arming the
// engine's cooperative abort flag from a timer (network.SetAbort): the
// run dies at the next cycle boundary, and host-level loops in workload
// hooks are expected to poll Network.Aborted.
//
// Once ctx is cancelled, no new cells are issued; in-flight cells drain
// to completion (their results are still reported and checkpointed), and
// every never-issued cell comes back with Err == ErrSkipped and
// Attempts == 0 — partial results, not a dead sweep.
//
// With Options.Lanes > 1, cells sharing a nonzero Cell.Group execute as
// lanes of one network.Ensemble (PlanUnits shows the batching): one
// engine pass simulates up to Lanes seeds, each lane bit-identical to
// its standalone run. A batch that dies — one lane panics, the group
// deadline fires — is discarded whole and every one of its cells re-runs
// standalone with its own budgets, so grouping never changes which cells
// succeed, what their rows say, or how failures are reported; it only
// changes wall-clock. Cancellation drains at unit granularity: a claimed
// batch finishes all its lanes.
func RunCellsCtx(ctx context.Context, cells []Cell, opts Options) []Result {
	out := make([]Result, len(cells))
	units := PlanUnits(cells, opts.Lanes)
	slots := make([]workerSlot, Workers(opts.Workers))
	DoWorkerCtx(ctx, len(units), opts.Workers, func(u, slot int) {
		unit := units[u]
		if len(unit) > 1 {
			if runEnsembleUnit(&slots[slot].ens, cells, unit, &opts, slot, out) {
				return
			}
			// The batch died — a lane panicked, the group deadline fired.
			// Per-lane isolation: every lane re-runs standalone below,
			// with its own deadline and its full retry budget, so one bad
			// lane can never take its siblings' results down.
		}
		for _, i := range unit {
			runSingle(&slots[slot].net, &cells[i], &opts, i, slot, out)
		}
	})
	for i := range out {
		if out[i].Attempts == 0 {
			out[i] = Result{Err: ErrSkipped, Worker: -1}
		}
	}
	return out
}

// workerSlot is one worker's reusable engine state: a standalone network
// for singleton cells and an ensemble for grouped ones, each rebuilt
// lazily and re-targeted in place across the jobs the slot runs.
type workerSlot struct {
	net *network.Network
	ens *network.Ensemble
}

// runSingle runs one cell through its full attempt loop on the slot's
// standalone engine, landing the result (and the OnResult checkpoint)
// for cell index i.
func runSingle(slotNet **network.Network, c *Cell, opts *Options, i, worker int, out []Result) {
	retries := resolve(c.Retries, opts.Retries)
	backoff := resolve(c.Backoff, opts.Backoff)
	deadline := resolve(c.Deadline, opts.Deadline)
	for attempt := 1; ; attempt++ {
		res, err := runCell(slotNet, c, deadline)
		res.Attempts = attempt
		res.Worker = worker
		if err == nil {
			out[i] = res
			break
		}
		// The engine may have died mid-simulation; its state is not
		// trustworthy for a Reset. Rebuild from scratch.
		*slotNet = nil
		if attempt > retries {
			out[i] = Result{Err: err, Attempts: attempt, Worker: worker}
			break
		}
		if backoff > 0 {
			d := backoff << (attempt - 1)
			if d > maxBackoff || d <= 0 {
				d = maxBackoff
			}
			time.Sleep(d)
		}
	}
	if opts.OnResult != nil {
		opts.OnResult(i, &out[i])
	}
}

// PlanUnits partitions cell indices into execution units: each unit is
// either one standalone cell (Group zero, or lanes disabled) or up to
// `lanes` cells sharing a nonzero Group, to run as one ensemble batch.
// Units are emitted in grid order — a group's chunks appear at its first
// member's position — and the plan depends only on (cells, lanes), so
// accounting recomputed by a caller always matches what ran.
func PlanUnits(cells []Cell, lanes int) [][]int {
	units := make([][]int, 0, len(cells))
	if lanes <= 1 {
		for i := range cells {
			units = append(units, []int{i})
		}
		return units
	}
	members := map[int][]int{}
	for i := range cells {
		if g := cells[i].Group; g != 0 {
			members[g] = append(members[g], i)
		}
	}
	done := map[int]bool{}
	for i := range cells {
		g := cells[i].Group
		if g == 0 {
			units = append(units, []int{i})
			continue
		}
		if done[g] {
			continue
		}
		done[g] = true
		for idx := members[g]; len(idx) > 0; {
			k := lanes
			if k > len(idx) {
				k = len(idx)
			}
			units = append(units, idx[:k])
			idx = idx[k:]
		}
	}
	return units
}

// runEnsembleUnit attempts one grouped unit as a single ensemble batch:
// build or re-target the slot's ensemble to the unit's configurations,
// attach each lane's Setup, run the shared warmup/measure schedule once
// across all lanes, and land every lane's result. Returns false — with
// no results landed and the slot's ensemble discarded — if anything
// panics (one bad lane, an aborted group deadline): the caller then runs
// each cell standalone, which preserves exact per-cell failure reporting
// at the cost of re-simulating the batch. The group deadline covers the
// whole batch; a batch aborted by it falls back to standalone runs where
// each cell gets its own fresh per-attempt deadline, so a cell is never
// failed by its siblings' wall-clock.
func runEnsembleUnit(slotEns **network.Ensemble, cells []Cell, unit []int, opts *Options, worker int, out []Result) (ok bool) {
	lead := &cells[unit[0]]
	deadline := resolve(lead.Deadline, opts.Deadline)
	res, err := runEnsembleBatch(slotEns, cells, unit, deadline)
	if err != nil {
		*slotEns = nil
		return false
	}
	for j, i := range unit {
		res[j].Worker = worker
		out[i] = res[j]
		if opts.OnResult != nil {
			opts.OnResult(i, &out[i])
		}
	}
	return true
}

// runEnsembleBatch runs one attempt of a grouped unit, converting any
// panic (bad configuration, tripped watchdog, failed audit, cooperative
// abort) into an error exactly as runCell does for a standalone cell.
func runEnsembleBatch(slotEns **network.Ensemble, cells []Cell, unit []int, deadline time.Duration) (res []Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if abort, ok := r.(*network.AbortError); ok {
				err = fmt.Errorf("%w after %v (batch aborted at cycle %d)", ErrDeadline, deadline, abort.Cycle)
			} else if e, ok := r.(error); ok {
				err = fmt.Errorf("batch panicked: %w", e)
			} else {
				err = fmt.Errorf("batch panicked: %v", r)
			}
		}
	}()
	cfgs := make([]network.Config, len(unit))
	for j, i := range unit {
		cfgs[j] = cells[i].Config
	}
	e := *slotEns
	if e == nil {
		var nerr error
		if e, nerr = network.NewEnsemble(cfgs); nerr != nil {
			panic(nerr)
		}
		*slotEns = e
	} else if rerr := e.Reset(cfgs); rerr != nil {
		panic(rerr)
	}
	if deadline > 0 {
		var flag atomic.Bool
		e.SetAbort(&flag)
		timer := time.AfterFunc(deadline, func() { flag.Store(true) })
		defer timer.Stop()
	}
	aux := make([]any, len(unit))
	for j, i := range unit {
		if cells[i].Setup != nil {
			aux[j] = cells[i].Setup(e.Lane(j))
		}
	}
	lead := &cells[unit[0]]
	t0 := time.Now()
	e.WarmupAndMeasure(lead.Warmup, lead.Measure)
	per := time.Since(t0) / time.Duration(len(unit))
	res = make([]Result, len(unit))
	for j := range unit {
		n := e.Lane(j)
		res[j] = Result{Stats: n.Stats(), End: n.Now(), Aux: aux[j], Attempts: 1, Elapsed: per}
	}
	return res, nil
}

// runCell runs one attempt of a cell on the slot's engine (building or
// resetting it), converting any panic into an error so a failed cell is
// a reportable result instead of a dead sweep. A positive deadline arms
// a wall-clock timer that aborts the engine cooperatively; the resulting
// *network.AbortError panic is reported as ErrDeadline.
func runCell(slot **network.Network, c *Cell, deadline time.Duration) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if abort, ok := r.(*network.AbortError); ok {
				err = fmt.Errorf("%w after %v (aborted at cycle %d)", ErrDeadline, deadline, abort.Cycle)
			} else if e, ok := r.(error); ok {
				err = fmt.Errorf("cell panicked: %w", e)
			} else {
				err = fmt.Errorf("cell panicked: %v", r)
			}
		}
	}()
	n := *slot
	if n == nil {
		n = network.MustNew(c.Config)
		*slot = n
	} else if rerr := n.Reset(c.Config); rerr != nil {
		panic(rerr)
	}
	if deadline > 0 {
		var flag atomic.Bool
		n.SetAbort(&flag)
		timer := time.AfterFunc(deadline, func() { flag.Store(true) })
		defer timer.Stop()
	}
	var aux any
	if c.Setup != nil {
		aux = c.Setup(n)
	}
	t0 := time.Now()
	n.WarmupAndMeasure(c.Warmup, c.Measure)
	return Result{Stats: n.Stats(), End: n.Now(), Aux: aux, Elapsed: time.Since(t0)}, nil
}
