package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tanoq/internal/network"
	"tanoq/internal/sim"
	"tanoq/internal/stats"
)

// Cell is one independent simulation: a network configuration plus its
// warmup/measurement schedule. Each cell builds and owns a private
// Network, so cells never share mutable state.
type Cell struct {
	Config network.Config
	// Warmup cycles run with measurement paused; Measure cycles follow
	// with the collector live (Network.WarmupAndMeasure).
	Warmup  int
	Measure int
	// Setup, when non-nil, runs after the cell's network is built or
	// reset and before warmup. It attaches auxiliary drivers — a
	// closed-loop client controller, a trace recorder — to the fresh
	// network (Network.Reset clears workload hooks precisely so that a
	// cell without Setup inherits nothing from its slot's previous
	// cell). Whatever it returns is surfaced on Result.Aux. Setup runs
	// on the worker goroutine and must touch only per-cell state.
	Setup func(*network.Network) any
}

// Result is the outcome of one cell.
type Result struct {
	// Stats is the cell's measurement collector, owned by the caller
	// once RunCells returns. Nil when the cell failed (see Err).
	Stats *stats.Collector
	// End is the simulation cycle at the end of the measurement window
	// (the `now` argument of rate metrics such as AcceptedFlitRate).
	End sim.Cycle
	// Aux is whatever the cell's Setup returned (nil without one) —
	// typically the attached driver, read back for its statistics.
	Aux any
	// Err reports a cell that panicked on every attempt (an invalid
	// configuration, a tripped watchdog, a failed invariant audit). A
	// failed cell does not abort the rest of the sweep: its slot's
	// engine is discarded, the cell is retried once on a fresh build,
	// and only a second failure lands here.
	Err error
	// Attempts is how many times the cell ran (1 normally, 2 when the
	// first attempt panicked).
	Attempts int
}

// Failed reports whether the cell produced no result.
func (r *Result) Failed() bool { return r.Err != nil }

// MustOK panics on the first failed cell of a sweep — for experiment
// drivers whose cells are all expected to succeed, keeping their
// fail-fast behavior now that RunCells contains per-cell panics.
func MustOK(results []Result) {
	for i := range results {
		if results[i].Err != nil {
			panic(fmt.Sprintf("runner: cell %d failed after %d attempts: %v", i, results[i].Attempts, results[i].Err))
		}
	}
}

// Workers resolves a requested worker count: n <= 0 selects one worker
// per CPU (GOMAXPROCS), anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do executes fn(i) for every i in [0, jobs) across a pool of workers.
// Jobs are claimed from a shared atomic counter, so long and short cells
// interleave without static partitioning imbalance. fn must not touch
// state shared with other jobs. A panic in any job is re-raised on the
// calling goroutine after all workers have stopped.
func Do(jobs, workers int, fn func(job int)) {
	DoWorker(jobs, workers, func(job, _ int) { fn(job) })
}

// DoWorker is Do with the worker's pool slot passed alongside the job
// index: fn(job, worker) with worker in [0, effective workers). All jobs
// run by the same worker share its slot, which is what lets callers keep
// per-worker reusable state (runner cells reuse one simulation engine per
// slot via Network.Reset) without any locking — a slot never runs two
// jobs concurrently.
func DoWorker(jobs, workers int, fn func(job, worker int)) {
	if jobs <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > jobs {
		workers = jobs
	}
	if workers <= 1 {
		for i := 0; i < jobs; i++ {
			fn(i, 0)
		}
		return
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for panicked.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				runJob(i, slot, fn, &panicked)
			}
		}(w)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic so it can travel through an atomic
// pointer back to the calling goroutine.
type panicValue struct{ v any }

// runJob runs one job, converting a panic into a recorded first-panic so
// the pool can drain instead of crashing the process from a worker.
func runJob(i, slot int, fn func(int, int), panicked *atomic.Pointer[panicValue]) {
	defer func() {
		if r := recover(); r != nil {
			panicked.CompareAndSwap(nil, &panicValue{v: r})
		}
	}()
	fn(i, slot)
}

// Map runs fn over [0, jobs) like Do and collects the results in input
// order: element i of the returned slice is fn(i), regardless of worker
// count or completion order.
func Map[T any](jobs, workers int, fn func(job int) T) []T {
	out := make([]T, jobs)
	Do(jobs, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// RunCells executes every cell across the worker pool and returns the
// results in input order. Each worker slot keeps one reusable Network:
// the first cell a slot runs builds it, and every later cell re-targets
// it in place via Network.Reset, so a whole sweep grid reuses one packet
// arena, event ring and router state per worker instead of reallocating
// them per cell. Because each cell's randomness derives entirely from
// its own Config.Seed — and a Reset network is bit-identical to a
// freshly built one — the results are bit-identical for every worker
// count and identical to building each cell from scratch.
//
// A cell that panics — an invalid configuration, a tripped watchdog, a
// failed invariant audit — does not take the sweep down: the slot's
// engine (possibly corrupted mid-simulation) is discarded, the cell is
// retried once on a freshly built network, and a second failure is
// reported on Result.Err with the rest of the grid unaffected. Callers
// that expect every cell to succeed assert with MustOK.
func RunCells(cells []Cell, workers int) []Result {
	out := make([]Result, len(cells))
	nets := make([]*network.Network, Workers(workers))
	DoWorker(len(cells), workers, func(i, slot int) {
		const maxAttempts = 2
		for attempt := 1; ; attempt++ {
			res, err := runCell(&nets[slot], &cells[i])
			res.Attempts = attempt
			if err == nil {
				out[i] = res
				return
			}
			// The engine may have died mid-simulation; its state is not
			// trustworthy for a Reset. Rebuild from scratch.
			nets[slot] = nil
			if attempt == maxAttempts {
				out[i] = Result{Err: err, Attempts: attempt}
				return
			}
		}
	})
	return out
}

// runCell runs one cell on the slot's engine (building or resetting it),
// converting any panic into an error so a failed cell is a reportable
// result instead of a dead sweep.
func runCell(slot **network.Network, c *Cell) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("cell panicked: %w", e)
			} else {
				err = fmt.Errorf("cell panicked: %v", r)
			}
		}
	}()
	n := *slot
	if n == nil {
		n = network.MustNew(c.Config)
		*slot = n
	} else if rerr := n.Reset(c.Config); rerr != nil {
		panic(rerr)
	}
	var aux any
	if c.Setup != nil {
		aux = c.Setup(n)
	}
	n.WarmupAndMeasure(c.Warmup, c.Measure)
	return Result{Stats: n.Stats(), End: n.Now(), Aux: aux}, nil
}
