package runner

import (
	"context"
	"errors"
	"testing"
	"time"

	"tanoq/internal/network"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// healthyCell builds one short uniform-random cell.
func healthyCell(seed uint64) Cell {
	w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
	return Cell{
		Config:  network.Config{Kind: topology.MeshX1, QoS: qos.DefaultConfig(w.TotalFlows()), Workload: w, Seed: seed},
		Warmup:  500,
		Measure: 2_000,
	}
}

// wedgedCell builds a cell whose delivery hook spins at host level — no
// simulated progress stalls, no cycle budget trips, the worker just never
// comes back. The spin polls Network.Aborted, the documented contract for
// host-level loops, so the wall-clock deadline can reel it back in.
func wedgedCell(seed uint64) Cell {
	c := healthyCell(seed)
	c.Setup = func(n *network.Network) any {
		n.SetDeliveryHook(func(network.Delivery) {
			for !n.Aborted() {
			}
		})
		return nil
	}
	return c
}

// TestDeadlineKillsWedgedCell is the wall-clock acceptance contract: a
// deliberately wedged cell (host-level spin in a workload hook) is killed
// by its per-cell deadline, retried per its budget, reported as a failed
// row — and the rest of the grid is unaffected.
func TestDeadlineKillsWedgedCell(t *testing.T) {
	cells := []Cell{healthyCell(1), wedgedCell(99), healthyCell(2)}
	cells[1].Deadline = 150 * time.Millisecond
	cells[1].Retries = 1
	start := time.Now()
	res := RunCellsCtx(context.Background(), cells, Options{Workers: 2})
	if !errors.Is(res[1].Err, ErrDeadline) {
		t.Fatalf("wedged cell error = %v, want ErrDeadline", res[1].Err)
	}
	if res[1].Attempts != 2 {
		t.Errorf("wedged cell ran %d attempts, want 2 (1 + Retries)", res[1].Attempts)
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || res[i].Stats == nil || res[i].Stats.TotalDelivered == 0 {
			t.Errorf("healthy cell %d did not survive the wedged neighbor: %+v", i, res[i])
		}
	}
	// Both attempts were deadline-bounded; the whole sweep must finish in
	// wall time on the order of 2 deadlines, not hang.
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("sweep took %v; deadline did not bound the wedged cell", el)
	}
}

// TestDeadlineDisabledByNegativeCellOverride pins the inheritance rule:
// Options.Deadline applies to cells that leave Deadline zero, and a
// negative Cell.Deadline opts the cell out entirely.
func TestDeadlineDisabledByNegativeCellOverride(t *testing.T) {
	cells := []Cell{healthyCell(1), healthyCell(2)}
	cells[1].Deadline = -1 // opt out: must complete despite the tiny default
	res := RunCellsCtx(context.Background(), cells, Options{Workers: 1, Deadline: 10 * time.Minute})
	for i := range res {
		if res[i].Err != nil {
			t.Errorf("cell %d failed under a generous default deadline: %v", i, res[i].Err)
		}
	}
}

// TestRetryBudgetExhaustion pins the configurable-retry contract: a cell
// failing deterministically runs exactly 1 + Retries attempts, and a
// negative Retries disables retrying outright.
func TestRetryBudgetExhaustion(t *testing.T) {
	bad := healthyCell(3)
	bad.Config.Nodes = 1 // invalid: needs at least 2 nodes, panics in Reset/build
	for _, tc := range []struct {
		retries  int
		attempts int
	}{
		{retries: 0, attempts: 3}, // inherits Options.Retries = 2
		{retries: 3, attempts: 4},
		{retries: -1, attempts: 1},
	} {
		c := bad
		c.Retries = tc.retries
		res := RunCellsCtx(context.Background(), []Cell{c},
			Options{Workers: 1, Retries: 2, Backoff: time.Microsecond})
		if res[0].Err == nil {
			t.Fatalf("retries=%d: invalid cell succeeded", tc.retries)
		}
		if res[0].Attempts != tc.attempts {
			t.Errorf("retries=%d: ran %d attempts, want %d", tc.retries, res[0].Attempts, tc.attempts)
		}
	}
}

// TestCancellationReturnsPartialResults pins graceful cancellation: a
// pre-cancelled context issues nothing; cancelling mid-sweep stops
// issuing but completed cells keep their results, and skipped cells are
// marked ErrSkipped with zero attempts.
func TestCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunCellsCtx(ctx, []Cell{healthyCell(1), healthyCell(2)}, Options{Workers: 2})
	for i := range res {
		if !errors.Is(res[i].Err, ErrSkipped) || res[i].Attempts != 0 {
			t.Errorf("pre-cancelled sweep cell %d: %+v, want ErrSkipped", i, res[i])
		}
	}

	// Mid-sweep: cancel from the first cell's completion callback; with
	// one worker every later cell must be skipped.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	cells := []Cell{healthyCell(1), healthyCell(2), healthyCell(3)}
	var completed int
	res = RunCellsCtx(ctx, cells, Options{
		Workers: 1,
		OnResult: func(job int, r *Result) {
			completed++
			cancel()
		},
	})
	if completed == len(cells) {
		t.Skip("all cells completed before cancellation took effect")
	}
	if res[0].Err != nil || res[0].Stats == nil {
		t.Fatalf("completed cell lost its result after cancellation: %+v", res[0])
	}
	skipped := 0
	for i := range res {
		if errors.Is(res[i].Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("cancellation mid-sweep skipped nothing")
	}
	if completed+skipped != len(cells) {
		t.Errorf("completed %d + skipped %d != %d cells", completed, skipped, len(cells))
	}
}

// TestOnResultObservesEveryIssuedCell pins the checkpoint surface: the
// callback fires exactly once per issued cell, successes and failures
// both, with the final result.
func TestOnResultObservesEveryIssuedCell(t *testing.T) {
	bad := healthyCell(9)
	bad.Config.Nodes = 1
	bad.Retries = -1
	cells := []Cell{healthyCell(1), bad, healthyCell(2)}
	seen := make([]int, len(cells))
	failed := 0
	res := RunCellsCtx(context.Background(), cells, Options{
		Workers: 1,
		OnResult: func(job int, r *Result) {
			seen[job]++
			if r.Failed() {
				failed++
			}
		},
	})
	for i, c := range seen {
		if c != 1 {
			t.Errorf("cell %d observed %d times, want 1", i, c)
		}
	}
	if failed != 1 {
		t.Errorf("observed %d failures, want 1", failed)
	}
	if res[1].Err == nil {
		t.Error("invalid cell did not fail")
	}
}

// TestRunCellsCtxMatchesRunCells pins that the durable path with inert
// options is bit-identical to the historical RunCells.
func TestRunCellsCtxMatchesRunCells(t *testing.T) {
	want := RunCells(cells(77), 2)
	got := RunCellsCtx(context.Background(), cells(77), Options{Workers: 2, Retries: 1})
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].End != want[i].End || got[i].Stats.TotalDelivered != want[i].Stats.TotalDelivered {
			t.Errorf("cell %d diverged between RunCells and RunCellsCtx", i)
		}
	}
}
