package runner

import (
	"reflect"
	"sync/atomic"
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must resolve to at least one worker")
	}
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if Workers(-1) < 1 {
		t.Fatal("negative requests must still resolve to a usable pool")
	}
}

func TestDoRunsEveryJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const jobs = 57
		var counts [jobs]atomic.Int32
		Do(jobs, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestMapPreservesInputOrder(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d holds %d: results out of input order", i, v)
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(0, 8, func(int) { t.Fatal("fn called for zero jobs") })
	if out := Map(0, 8, func(int) int { return 1 }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}

func TestPanicPropagatesToCaller(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			Do(8, workers, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
		}()
	}
}

// cells builds a small mixed grid: two topologies at two rates.
func cells(seed uint64) []Cell {
	var out []Cell
	for _, kind := range []topology.Kind{topology.MeshX1, topology.MECS} {
		for _, rate := range []float64{0.03, 0.08} {
			w := traffic.UniformRandom(topology.ColumnNodes, rate)
			out = append(out, Cell{
				Config: network.Config{
					Kind:     kind,
					QoS:      qos.DefaultConfig(w.TotalFlows()),
					Workload: w,
					Seed:     seed,
				},
				Warmup:  1_000,
				Measure: 4_000,
			})
		}
	}
	return out
}

// TestRunCellsDeterministicAcrossWorkerCounts is the runner's central
// contract: parallel execution returns results bit-identical to
// sequential execution, field for field.
func TestRunCellsDeterministicAcrossWorkerCounts(t *testing.T) {
	seq := RunCells(cells(11), 1)
	for _, workers := range []int{2, 8} {
		par := RunCells(cells(11), workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].End != seq[i].End {
				t.Errorf("workers=%d cell %d: end cycle %d != %d", workers, i, par[i].End, seq[i].End)
			}
			if !reflect.DeepEqual(par[i].Stats, seq[i].Stats) {
				t.Errorf("workers=%d cell %d: collectors differ", workers, i)
			}
		}
	}
}

// TestRunCellsReuseMatchesFreshBuilds pins the sweep-level reuse
// contract: RunCells runs every cell on a per-worker engine re-targeted
// with Network.Reset, and its results must be bit-identical to building
// a fresh Network per cell. With one worker a single engine crosses
// every topology/rate boundary of the grid in sequence — the harshest
// reuse pattern.
func TestRunCellsReuseMatchesFreshBuilds(t *testing.T) {
	cs := cells(23)
	var fresh []Result
	for _, c := range cs {
		n := network.MustNew(c.Config)
		n.WarmupAndMeasure(c.Warmup, c.Measure)
		fresh = append(fresh, Result{Stats: n.Stats(), End: n.Now()})
	}
	for _, workers := range []int{1, 3} {
		reused := RunCells(cells(23), workers)
		for i := range fresh {
			if reused[i].End != fresh[i].End {
				t.Errorf("workers=%d cell %d: end cycle %d != fresh %d", workers, i, reused[i].End, fresh[i].End)
			}
			if !reflect.DeepEqual(reused[i].Stats, fresh[i].Stats) {
				t.Errorf("workers=%d cell %d: reused collector differs from fresh build", workers, i)
			}
		}
	}
}

func TestRunCellsProducesLiveResults(t *testing.T) {
	res := RunCells(cells(5), 0)
	for i, r := range res {
		if r.Stats.TotalDelivered == 0 {
			t.Errorf("cell %d delivered nothing", i)
		}
		if r.End == 0 {
			t.Errorf("cell %d reports no end cycle", i)
		}
	}
}

// TestRunCellsRecoversFailedCells pins the sweep-survival contract: a
// cell that panics deterministically (here, a watchdog-caught deadlock
// from a permanently stalled router) is retried once on a fresh engine,
// reported on Result.Err, and the surrounding cells complete normally —
// with results identical to a run that never saw the poisoned cell's
// slot state.
func TestRunCellsRecoversFailedCells(t *testing.T) {
	good := func(seed uint64) Cell {
		w := traffic.UniformRandom(topology.ColumnNodes, 0.03)
		cfg := qos.DefaultConfig(w.TotalFlows())
		return Cell{
			Config:  network.Config{Kind: topology.MeshX1, QoS: cfg, Workload: w, Seed: seed},
			Warmup:  500,
			Measure: 2_000,
		}
	}
	bad := good(99)
	bad.Config.Faults = network.FaultConfig{
		Windows: []noc.FaultWindow{{Kind: noc.FaultRouterStall, Node: 3, From: 100}},
	}
	bad.Config.WatchdogCycles = 400

	cells := []Cell{good(1), bad, good(2)}
	res := RunCells(cells, 1)
	if res[1].Err == nil {
		t.Fatal("deadlocked cell reported no error")
	}
	if res[1].Attempts != 2 {
		t.Errorf("failed cell ran %d attempts, want 2", res[1].Attempts)
	}
	if !res[1].Failed() || res[1].Stats != nil {
		t.Errorf("failed cell carries a result: %+v", res[1])
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || res[i].Stats == nil || res[i].Stats.TotalDelivered == 0 {
			t.Errorf("healthy cell %d did not survive its neighbor's failure: %+v", i, res[i])
		}
	}
	// The healthy cells must match a sweep that never contained the
	// poisoned cell (slot discard and rebuild preserves determinism).
	clean := RunCells([]Cell{good(1), good(2)}, 1)
	MustOK(clean)
	if clean[0].Stats.TotalDelivered != res[0].Stats.TotalDelivered ||
		clean[1].Stats.TotalDelivered != res[2].Stats.TotalDelivered {
		t.Error("failure recovery perturbed neighboring cells")
	}

	defer func() {
		if recover() == nil {
			t.Error("MustOK did not panic on a failed cell")
		}
	}()
	MustOK(res)
}
