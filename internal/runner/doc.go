// Package runner fans independent simulations out across a worker pool.
//
// Every artifact of the paper's evaluation is a grid of fully independent
// simulation cells — (topology × rate × workload) points that each own
// their Network, seeded RNG and statistics collector — so the experiment
// drivers are embarrassingly parallel. The runner executes such a grid
// across up to GOMAXPROCS goroutines while preserving the determinism
// contract of package sim:
//
//   - Results come back in input order: cell i's result is element i of
//     the returned slice, regardless of which worker ran it or when it
//     finished.
//   - Worker count never changes results: a cell's simulation reads only
//     its own Network state, whose RNG streams are derived from the
//     cell's seed, so the output of RunCells (and Do/Map) is bit-identical
//     for every worker count, including fully sequential execution. Tests
//     assert this field-for-field.
//
// Workers selects the pool size: 0 (the usual default) means one worker
// per CPU, 1 forces sequential execution in the calling goroutine, and
// any other count caps the pool explicitly. A panic inside a worker is
// captured and re-raised on the calling goroutine once the pool has
// drained, so a misconfigured cell fails the same way it would
// sequentially.
package runner
