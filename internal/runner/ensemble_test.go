package runner

import (
	"context"
	"reflect"
	"testing"

	"tanoq/internal/network"
	"tanoq/internal/noc"
	"tanoq/internal/qos"
	"tanoq/internal/topology"
	"tanoq/internal/traffic"
)

// seedCells builds a seed axis: cells identical except Config.Seed, all
// stamped with the given Group so the runner may batch them.
func seedCells(kind topology.Kind, rate float64, group int, seeds ...uint64) []Cell {
	out := make([]Cell, 0, len(seeds))
	for _, s := range seeds {
		w := traffic.UniformRandom(topology.ColumnNodes, rate)
		out = append(out, Cell{
			Config: network.Config{
				Kind:     kind,
				QoS:      qos.DefaultConfig(w.TotalFlows()),
				Workload: w,
				Seed:     s,
			},
			Warmup:  1_000,
			Measure: 4_000,
			Group:   group,
		})
	}
	return out
}

func TestPlanUnits(t *testing.T) {
	mk := func(groups ...int) []Cell {
		cs := make([]Cell, len(groups))
		for i, g := range groups {
			cs[i].Group = g
		}
		return cs
	}
	cases := []struct {
		name  string
		cells []Cell
		lanes int
		want  [][]int
	}{
		{"lanes disabled", mk(1, 1, 1), 1, [][]int{{0}, {1}, {2}}},
		{"ungrouped stay singletons", mk(0, 0, 0), 4, [][]int{{0}, {1}, {2}}},
		{"one group one unit", mk(7, 7, 7), 4, [][]int{{0, 1, 2}}},
		{"group chunked by lanes", mk(1, 1, 1, 1, 1), 2, [][]int{{0, 1}, {2, 3}, {4}}},
		{"chunks land at first member", mk(0, 3, 3, 0, 3), 8, [][]int{{0}, {1, 2, 4}, {3}}},
		{"interleaved groups", mk(1, 2, 1, 2, 0), 4, [][]int{{0, 2}, {1, 3}, {4}}},
		{"empty", nil, 4, [][]int{}},
	}
	for _, c := range cases {
		if got := PlanUnits(c.cells, c.lanes); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: PlanUnits = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRunCellsGroupedMatchesUngrouped is the grouping correctness
// contract at the runner layer: a sweep executed through ensemble
// batches returns rows bit-identical (modulo wall-clock) to the same
// sweep executed cell by cell, in the same input order, for any lane
// width and worker count.
func TestRunCellsGroupedMatchesUngrouped(t *testing.T) {
	grid := func() []Cell {
		var cs []Cell
		cs = append(cs, seedCells(topology.MeshX2, 0.03, 1, 10, 11, 12, 13, 14)...)
		cs = append(cs, seedCells(topology.MECS, 0.06, 2, 10, 11, 12)...)
		// A stray ungrouped cell between the seed axes.
		stray := seedCells(topology.MeshX1, 0.04, 0, 77)
		cs = append(cs, stray...)
		return cs
	}
	base := RunCellsCtx(context.Background(), grid(), Options{Workers: 1, Retries: 1})
	MustOK(base)
	for _, opts := range []Options{
		{Workers: 1, Retries: 1, Lanes: 2},
		{Workers: 1, Retries: 1, Lanes: 4},
		{Workers: 3, Retries: 1, Lanes: 8},
	} {
		got := RunCellsCtx(context.Background(), grid(), opts)
		MustOK(got)
		if len(got) != len(base) {
			t.Fatalf("lanes=%d: %d rows, want %d", opts.Lanes, len(got), len(base))
		}
		for i := range base {
			if got[i].End != base[i].End {
				t.Errorf("lanes=%d cell %d: end %d != %d", opts.Lanes, i, got[i].End, base[i].End)
			}
			if !reflect.DeepEqual(got[i].Stats, base[i].Stats) {
				t.Errorf("lanes=%d workers=%d cell %d: grouped collector diverges from standalone",
					opts.Lanes, opts.Workers, i)
			}
		}
	}
}

// TestRunCellsGroupedFallbackIsolation poisons one lane of a grouped
// unit (a watchdog-caught permanent router stall). The ensemble batch
// dies, every lane falls back to a standalone run, and the outcome must
// be indistinguishable from never grouping: siblings keep bit-identical
// results, only the poisoned cell reports an error.
func TestRunCellsGroupedFallbackIsolation(t *testing.T) {
	poisoned := func() []Cell {
		cs := seedCells(topology.MeshX1, 0.03, 1, 20, 21, 22, 23)
		cs[2].Config.Faults = network.FaultConfig{
			Windows: []noc.FaultWindow{{Kind: noc.FaultRouterStall, Node: 3, From: 100}},
		}
		cs[2].Config.WatchdogCycles = 400
		return cs
	}
	res := RunCellsCtx(context.Background(), poisoned(), Options{Workers: 1, Retries: 1, Lanes: 4})
	if res[2].Err == nil {
		t.Fatal("poisoned lane reported no error")
	}
	base := RunCellsCtx(context.Background(), poisoned(), Options{Workers: 1, Retries: 1})
	for _, i := range []int{0, 1, 3} {
		if res[i].Err != nil {
			t.Fatalf("healthy lane %d failed: %v", i, res[i].Err)
		}
		if res[i].End != base[i].End || !reflect.DeepEqual(res[i].Stats, base[i].Stats) {
			t.Errorf("lane %d: fallback result diverges from ungrouped run", i)
		}
	}
}
