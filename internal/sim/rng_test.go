package sim

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := NewRNG(7)
	p.Uint64() // consume the split draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream collided with parent at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	const p, draws = 0.14, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.005 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	check := func(n uint8) bool {
		m := int(n%32) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(23)
	const mean, draws = 40.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	if got := sum / draws; math.Abs(got-mean) > 0.02*mean {
		t.Errorf("Exponential mean = %v, want ~%v", got, mean)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := NewRNG(29)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", g)
		}
		if g := r.Geometric(1.5); g != 1 {
			t.Fatalf("Geometric(1.5) = %d, want 1", g)
		}
	}
	// Tiny p must neither overflow nor return nonsense: results stay in
	// [1, maxGeometric] even at sub-denormal success probabilities.
	for _, p := range []float64{1e-9, 1e-18, 1e-300, 5e-324} {
		for i := 0; i < 100; i++ {
			g := r.Geometric(p)
			if g < 1 || g > maxGeometric {
				t.Fatalf("Geometric(%g) = %d out of [1, 2^62]", p, g)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestGeometricMean(t *testing.T) {
	// Inverse-CDF correctness: the sample mean must track 1/p across the
	// rate range the traffic generators use.
	r := NewRNG(31)
	for _, p := range []float64{0.5, 0.1, 0.004, 1e-4} {
		const draws = 200_000
		var sum float64
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		got, want := sum/draws, 1/p
		// Standard error of the mean is ~(1/p)/sqrt(draws); 4 sigma.
		if tol := 4 * want / math.Sqrt(draws); math.Abs(got-want) > tol {
			t.Errorf("Geometric(%v) mean = %v, want %v +/- %v", p, got, want, tol)
		}
	}
}

func TestGeometricReproducesBernoulliProcess(t *testing.T) {
	// The engine's contract: counting arrivals in a window of W cycles,
	// where arrival k+1 lands Geometric(p) cycles after arrival k, must
	// reproduce the per-cycle Bernoulli(p) process — a Binomial(W, p)
	// count with mean Wp and variance Wp(1-p).
	const p, window, trials = 0.02, 2_000, 5_000
	r := NewRNG(37)
	counts := make([]float64, trials)
	for tr := range counts {
		next := r.Geometric(p) - 1 // first trial succeeds with probability p
		n := 0.0
		for next < window {
			n++
			next += r.Geometric(p)
		}
		counts[tr] = n
	}
	var sum, sq float64
	for _, c := range counts {
		sum += c
	}
	mean := sum / trials
	for _, c := range counts {
		sq += (c - mean) * (c - mean)
	}
	variance := sq / (trials - 1)

	wantMean := float64(window) * p
	wantVar := float64(window) * p * (1 - p)
	// Mean within 4 standard errors; variance within 10%.
	if tol := 4 * math.Sqrt(wantVar/trials); math.Abs(mean-wantMean) > tol {
		t.Errorf("arrival count mean %v, want %v +/- %v", mean, wantMean, tol)
	}
	if math.Abs(variance-wantVar) > 0.1*wantVar {
		t.Errorf("arrival count variance %v, want ~%v", variance, wantVar)
	}
}

func TestMul64AgainstStdlib(t *testing.T) {
	check := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	if c.Tick() != 1 || c.Now() != 1 {
		t.Fatal("Tick did not advance to 1")
	}
	c.Advance(10)
	if c.Now() != 11 {
		t.Fatalf("Advance(10): now = %d, want 11", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
