package sim

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must not replay the parent stream.
	p := NewRNG(7)
	p.Uint64() // consume the split draw
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream collided with parent at step %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 8, 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(13)
	const p, draws = 0.14, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.005 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	check := func(n uint8) bool {
		m := int(n%32) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(23)
	const mean, draws = 40.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential returned negative %v", v)
		}
		sum += v
	}
	if got := sum / draws; math.Abs(got-mean) > 0.02*mean {
		t.Errorf("Exponential mean = %v, want ~%v", got, mean)
	}
}

func TestMul64AgainstStdlib(t *testing.T) {
	check := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		wantHi, wantLo := bits.Mul64(a, b)
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	if c.Tick() != 1 || c.Now() != 1 {
		t.Fatal("Tick did not advance to 1")
	}
	c.Advance(10)
	if c.Now() != 11 {
		t.Fatalf("Advance(10): now = %d, want 11", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not rewind")
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
