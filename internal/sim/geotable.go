package sim

import (
	"math"
	"sync"
)

// GeoTable is an inverse-CDF lookup table for geometric draws with a fixed
// success probability — the hot path of injection sampling, where every
// packet costs one Geometric draw and math.Log1p dominates the cost.
//
// The table maps a uniform u in [0, 1) to exactly the value
// GeometricLog(p, log1p(-p)) computes from the same u: the quantile
// boundaries bound[k] are found by binary search over the float64 bit
// space against the log-formula itself, so every u on either side of a
// boundary classifies identically. Draw is therefore bit-identical to the
// formula while replacing the transcendental with one multiply, a jump
// table read and (on average) barely more than one comparison — the jump
// table is sized so the expected overshoot scan is tabMax/jumpN entries.
//
// Draws beyond the tabled range (the top ~q^tabMax of the distribution)
// fall back to the formula with the very same u, keeping the tail exact.
type GeoTable struct {
	// bound[k] is the largest float64 u for which the log formula yields
	// a value <= k; bound[0] = -1 so the scan below never underruns.
	bound [geoTabMax + 1]float64
	// jump[i] is the formula's value at the lowest u of jump bucket i —
	// the scan's starting candidate.
	jump [geoJumpN]uint16
	p    float64
	logQ float64
}

const (
	// geoTabMax boundaries cover all but ~(1-p)^geoTabMax of the mass
	// (3e-5 at p = 0.04, the engine's sub-saturation operating point).
	geoTabMax = 256
	// geoJumpN jump buckets keep the expected boundary scan per draw at
	// geoTabMax/geoJumpN entries.
	geoJumpN = 1024
)

// geoFormula is the exact expression GeometricLog evaluates after its
// uniform draw; the table is built against it and the tail falls back
// to it.
func geoFormula(u, logQ float64) int64 {
	g := math.Floor(math.Log1p(-u)/logQ) + 1
	if !(g < float64(maxGeometric)) { // also catches +Inf and NaN
		return maxGeometric
	}
	return int64(g)
}

// NewGeoTable builds the table for success probability p. It panics for
// p <= 0 like Geometric; p >= 1 is legal (Draw returns 1 without
// consuming randomness, as GeometricLog does).
func NewGeoTable(p float64) *GeoTable {
	if p <= 0 {
		panic("sim: GeoTable with non-positive success probability")
	}
	t := &GeoTable{p: p, logQ: math.Log1p(-p)}
	if p >= 1 {
		return t
	}
	t.bound[0] = -1
	// Largest representable u below 1.0: the search space's upper end.
	uMax := math.Float64frombits(math.Float64bits(1.0) - 1)
	for k := 1; k <= geoTabMax; k++ {
		t.bound[k] = t.bound[k-1]
		if geoFormula(uMax, t.logQ) <= int64(k) {
			// The whole range maps at or below k already (large p).
			t.bound[k] = uMax
			continue
		}
		// Binary search the float64 bit space of [bound[k-1], 1) for the
		// largest u still classified <= k. Float64bits is monotone over
		// non-negative floats, so bit-space bisection is value-space
		// bisection.
		lo := uint64(0)
		if t.bound[k-1] > 0 {
			lo = math.Float64bits(t.bound[k-1])
		}
		hi := math.Float64bits(1.0) - 1
		for lo < hi {
			mid := lo + (hi-lo+1)/2
			if geoFormula(math.Float64frombits(mid), t.logQ) <= int64(k) {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		t.bound[k] = math.Float64frombits(lo)
	}
	// jump[i] = the formula's value at bucket i's low edge: one forward
	// pass, since both bucket edges and boundaries are sorted.
	k := uint16(1)
	for i := 0; i < geoJumpN; i++ {
		edge := float64(i) / geoJumpN
		for int(k) < geoTabMax && t.bound[k] < edge {
			k++
		}
		t.jump[i] = k
	}
	return t
}

// Draw returns GeometricLog(p, log1p(-p))'s exact result, consuming one
// uniform draw from r (none for the degenerate p >= 1).
func (t *GeoTable) Draw(r *RNG) int64 {
	if t.p >= 1 {
		return 1
	}
	u := r.Float64()
	if u > t.bound[geoTabMax] {
		return geoFormula(u, t.logQ)
	}
	k := int64(t.jump[int(u*geoJumpN)])
	for u > t.bound[k] {
		k++
	}
	return k
}

// geoTables shares built tables across samplers: a sweep's sources
// overwhelmingly reuse a handful of rates, and ensemble lanes reuse their
// standalone cells' exactly. Keyed by the probability's bits; reads are
// lock-free after the first build of each rate.
var geoTables sync.Map

// SharedGeoTable returns the (possibly cached) table for p. Tables are
// immutable after construction and safe for concurrent Draw use — each
// draw's state lives in the caller's RNG.
func SharedGeoTable(p float64) *GeoTable {
	key := math.Float64bits(p)
	if v, ok := geoTables.Load(key); ok {
		return v.(*GeoTable)
	}
	v, _ := geoTables.LoadOrStore(key, NewGeoTable(p))
	return v.(*GeoTable)
}
