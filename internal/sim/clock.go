package sim

// Cycle is a point in simulated time, measured in router clock cycles.
// The paper's target is a 32 nm CMP; all latency results are reported in
// cycles so the clock frequency never needs to be fixed.
type Cycle int64

// Clock is the global cycle counter of a simulation. Components read it
// for timestamps; only the top-level engine advances it.
type Clock struct {
	now Cycle
}

// Now returns the current cycle.
func (c *Clock) Now() Cycle { return c.now }

// Tick advances the clock by one cycle and returns the new time.
func (c *Clock) Tick() Cycle {
	c.now++
	return c.now
}

// Advance moves the clock forward by d cycles (d must be non-negative).
func (c *Clock) Advance(d Cycle) {
	if d < 0 {
		panic("sim: Advance with negative delta")
	}
	c.now += d
}

// Reset rewinds the clock to cycle zero, for reuse across measurement runs.
func (c *Clock) Reset() { c.now = 0 }
