package sim

import (
	"math"
	"testing"
)

// TestGeoTableMatchesFormula pins the table sampler's defining property:
// for the same RNG stream it returns exactly what GeometricLog returns,
// draw for draw, across rates spanning the sweep grid and beyond.
func TestGeoTableMatchesFormula(t *testing.T) {
	for _, p := range []float64{1e-6, 1e-4, 0.005, 0.01, 0.04, 0.0975, 0.16, 0.5, 0.9, 0.999, 1.0, 1.5} {
		tab := NewGeoTable(p)
		logQ := math.Log1p(-p)
		a, b := NewRNG(12345), NewRNG(12345)
		for i := 0; i < 200_000; i++ {
			got, want := tab.Draw(a), b.GeometricLog(p, logQ)
			if got != want {
				t.Fatalf("p=%v draw %d: table %d, formula %d", p, i, got, want)
			}
		}
	}
}

// TestGeoTableBoundaryExact hammers the quantile boundaries, where an
// off-by-one-ulp table entry would first show: for every tabled k, the
// stored bound and its float successor must classify onto opposite sides
// of the formula.
func TestGeoTableBoundaryExact(t *testing.T) {
	for _, p := range []float64{0.01, 0.04, 0.16} {
		tab := NewGeoTable(p)
		logQ := math.Log1p(-p)
		for k := 1; k <= geoTabMax; k++ {
			b := tab.bound[k]
			if b < 0 {
				continue
			}
			if g := geoFormula(b, logQ); g > int64(k) {
				t.Fatalf("p=%v bound[%d]=%v classifies as %d", p, k, b, g)
			}
			next := math.Float64frombits(math.Float64bits(b) + 1)
			if next < 1 {
				if g := geoFormula(next, logQ); g <= int64(k) {
					t.Fatalf("p=%v bound[%d] successor %v still classifies as %d", p, k, next, g)
				}
			}
		}
	}
}

// TestSharedGeoTableReuse pins the cache: same rate, same table.
func TestSharedGeoTableReuse(t *testing.T) {
	if SharedGeoTable(0.04) != SharedGeoTable(0.04) {
		t.Fatal("SharedGeoTable rebuilt a cached rate")
	}
}
