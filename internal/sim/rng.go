// Package sim provides the low-level simulation substrate shared by every
// model in tanoq: a deterministic, seedable random number generator and a
// cycle clock. Determinism matters here — every experiment in the paper is
// regenerated from a fixed seed, so two runs of the same harness must
// produce bit-identical results.
package sim

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64 (Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014). It is small, fast, allocation-free and passes
// BigCrush, which is more than sufficient for stochastic traffic
// generation. The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Seed resets the generator to the stream identified by seed.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a new, statistically independent generator from r.
// The derived stream does not overlap r's stream for any practical length;
// it is used to give each traffic injector its own private stream so that
// adding or removing injectors does not perturb the others.
func (r *RNG) Split() *RNG {
	dst := &RNG{}
	r.SplitInto(dst)
	return dst
}

// SplitInto is Split writing into an existing generator, for callers that
// keep their RNGs by value (the engine's sources) and re-seed them on
// reuse instead of allocating. The derived stream is identical to Split's.
func (r *RNG) SplitInto(dst *RNG) {
	dst.state = r.Uint64() ^ 0x6a09e667f3bcc909
}

// Intn returns a uniformly distributed integer in [0, n). It panics when
// n <= 0. Lemire's multiply-shift rejection method keeps the result
// unbiased without a modulo in the common path.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b, returning the high and low
// 64-bit halves. Written out long-hand to stay allocation-free on every
// platform without importing math/bits semantics concerns (math/bits would
// be fine too; this keeps the dependency surface explicit).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly distributed float in [0, 1) with 53 bits of
// precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Exponential returns an exponentially distributed value with the given
// mean. Used by traffic generators that model bursty inter-arrival times.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	// Guard against log(0); Float64 never returns 1.0 so 1-u is never 0.
	return -mean * math.Log(1-u)
}

// maxGeometric caps Geometric's result so that the float intermediate can
// never overflow int64 (possible for sub-denormal success probabilities).
// 1<<62 cycles is beyond any simulable horizon, so the cap is unobservable.
const maxGeometric = int64(1) << 62

// Geometric returns the number of Bernoulli(p) trials up to and including
// the first success — support {1, 2, ...}, mean 1/p — via the inverse CDF:
// G = floor(log(1-U)/log(1-p)) + 1. Drawing inter-arrival gaps from this
// distribution reproduces a per-cycle Bernoulli(p) arrival process exactly
// (each cycle after an arrival succeeds independently with probability p),
// while consuming one uniform draw per arrival instead of one per cycle —
// the sampling half of the engine's O(work) redesign. log1p keeps the
// quantile accurate for tiny p, where log(1-p) would lose all precision.
func (r *RNG) Geometric(p float64) int64 {
	return r.GeometricLog(p, math.Log1p(-p))
}

// GeometricLog is Geometric with the quantile denominator log(1-p)
// precomputed by the caller. The denominator is a per-distribution
// constant, and log1p dominated the cost of a draw on the engine's
// injection path — a sampler that draws per packet caches it once
// (traffic.ArrivalSampler). Passing the exact same float the inline
// computation produced keeps the division — and therefore every drawn
// gap — bit-identical to Geometric.
func (r *RNG) GeometricLog(p, logQ float64) int64 {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("sim: Geometric with non-positive success probability")
	}
	u := r.Float64()
	g := math.Floor(math.Log1p(-u)/logQ) + 1
	if !(g < float64(maxGeometric)) { // also catches +Inf and NaN
		return maxGeometric
	}
	return int64(g)
}
