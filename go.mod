module tanoq

go 1.21
